//! [`Server`]: the facade over the whole serving stack. Owns the shared
//! state (pool, queue, cache, metrics), runs admission on the caller's
//! thread, and spawns/joins the dispatcher shards.

use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use problp_ac::AcGraph;
use problp_bayes::EvidenceBatch;
use problp_telemetry::{HealthFn, HealthStatus, MetricsRegistry};

use super::admission::{LaneResult, ServeConfig, ServeError, ServeRequest};
use super::cache::{lock_cache, AnswerCache, CacheKey};
use super::dispatch::worker_loop;
use super::metrics::{ServeMetrics, ServerStats};
use super::pool::{CircuitPool, ModelVersion};
use super::queue::{lock_queue, Group, QueueState, Waiter};
use super::ticket::Ticket;
use crate::kernels::KernelSet;
use problp_num::Arith;

/// Everything the admission path and the dispatcher shards share.
///
/// Lock order where both are taken: queue, then cache. The cache is
/// `None` when [`ServeConfig::cache_capacity`] is zero, so the
/// cache-off hot paths never touch a second lock.
pub(crate) struct Shared<A: Arith> {
    pub(crate) pool: CircuitPool<A>,
    pub(crate) config: ServeConfig,
    pub(crate) queue: Mutex<QueueState<A>>,
    pub(crate) ready: Condvar,
    pub(crate) cache: Option<Mutex<AnswerCache<LaneResult<A::Value>>>>,
    pub(crate) metrics: ServeMetrics,
}

/// A running serving instance: a [`CircuitPool`] behind an admission
/// queue and a shard of dispatcher workers.
///
/// Dropping the server (or calling [`Server::shutdown`]) stops
/// admission, flushes every queued request through the dispatchers and
/// joins the worker threads — no ticket is left hanging.
pub struct Server<A: Arith> {
    pub(crate) shared: Arc<Shared<A>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl<A> Server<A>
where
    A: KernelSet + Clone + Send + Sync + 'static,
    A::Value: Clone + Send + Sync + 'static,
{
    /// Starts `config.workers` dispatcher shards over `pool`, recording
    /// metrics into a private registry (read it back via
    /// [`Server::metrics`] / [`Server::stats`]).
    pub fn start(pool: CircuitPool<A>, config: ServeConfig) -> Self {
        Self::start_instrumented(pool, config, Arc::new(MetricsRegistry::new()))
    }

    /// Like [`Server::start`], but records into a caller-supplied
    /// [`MetricsRegistry`] — the hook for sharing one registry between
    /// the server, a [`problp_telemetry::Tracer`] and a
    /// [`problp_telemetry::Sidecar`]. (A separate constructor because
    /// [`ServeConfig`] is `Copy` and cannot carry an `Arc`.)
    pub fn start_instrumented(
        pool: CircuitPool<A>,
        config: ServeConfig,
        registry: Arc<MetricsRegistry>,
    ) -> Self {
        let shared = Arc::new(Shared {
            pool,
            config,
            queue: Mutex::new(QueueState::new()),
            ready: Condvar::new(),
            cache: (config.cache_capacity > 0)
                .then(|| Mutex::new(AnswerCache::new(config.cache_capacity))),
            metrics: ServeMetrics::new(registry),
        });
        // Publish every hosted model's live version gauge up front, so a
        // scrape sees the fleet even before the first reload.
        for (model, version) in shared.pool.model_versions() {
            shared
                .metrics
                .model_version_gauge(&model)
                .set(version as i64);
        }
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Server { shared, workers }
    }

    /// The registry this server records into: render it, serve it from
    /// a sidecar, or attach more instruments to it.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.shared.metrics.registry)
    }

    /// A point-in-time snapshot of the server's own counters — the
    /// programmatic alternative to scraping `/metrics`.
    pub fn stats(&self) -> ServerStats {
        let m = &self.shared.metrics;
        let mut tenant_lanes: Vec<(String, usize)> = {
            let q = lock_queue(&self.shared.queue);
            q.tenant_lanes
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect()
        };
        tenant_lanes.sort();
        ServerStats {
            requests: m.requests.get(),
            admitted: m.admitted.get(),
            rejected_unknown_model: m.rejected_unknown_model.get(),
            rejected_bad_shape: m.rejected_bad_shape.get(),
            rejected_quota: m.rejected_quota.get(),
            rejected_shutdown: m.rejected_shutdown.get(),
            dispatches: m.dispatches.get(),
            cache_hits: m.cache_hits.get(),
            cache_misses: m.cache_misses.get(),
            cache_evictions: m.cache_evictions.get(),
            queue_depth: m.queue_depth.get(),
            queue_depth_high_water: m.queue_depth.high_water(),
            tenant_lanes,
            live_workers: m.live_workers.get(),
            models: self.shared.pool.models(),
            model_versions: self.shared.pool.model_versions(),
        }
    }

    /// A `/healthz` callback for a [`problp_telemetry::Sidecar`]:
    /// healthy while at least one dispatcher worker is alive and the
    /// server is not shut down, with the hosted models, live worker
    /// count and queue depth as detail lines. The closure holds its own
    /// `Arc` on the server internals, so it outlives this handle.
    pub fn health_fn(&self) -> HealthFn {
        let shared = Arc::clone(&self.shared);
        Box::new(move || {
            let shut = lock_queue(&shared.queue).shutdown;
            let workers = shared.metrics.live_workers.get();
            HealthStatus {
                healthy: workers > 0 && !shut,
                detail: vec![
                    ("models".to_string(), shared.pool.models().join(",")),
                    ("workers_alive".to_string(), workers.to_string()),
                    (
                        "queue_depth".to_string(),
                        shared.metrics.queue_depth.get().to_string(),
                    ),
                ],
            }
        })
    }

    /// The hosted pool (for direct [`CircuitPool::serve_one`] replays
    /// against the same engines).
    pub fn pool(&self) -> &CircuitPool<A> {
        &self.shared.pool
    }

    /// Hot-swaps `model` to a freshly compiled (and verified) tape
    /// built from `ac`, without stopping the server: see
    /// [`CircuitPool::reload`] for the cut-over semantics. On top of
    /// the pool swap, this drops the model's cached answers (counted as
    /// evictions) and publishes the new version on the
    /// `problp_pool_model_version` gauge.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] when `model` is not hosted, or the
    /// compile/verify error of the replacement graph — the old version
    /// keeps serving in either case.
    pub fn reload(&self, model: &str, ac: &AcGraph) -> Result<ModelVersion, ServeError> {
        let version = self.shared.pool.reload(model, ac)?;
        if let Some(cache) = &self.shared.cache {
            // Keyed lookups already miss the old version; the eager drop
            // just returns the capacity. A dispatch racing this may
            // re-insert an old-version entry afterwards — harmless, it
            // can never be looked up again and LRU pressure reclaims it.
            let dropped = lock_cache(cache).invalidate_model(model);
            if dropped > 0 {
                self.shared.metrics.cache_evictions.add(dropped);
            }
        }
        self.shared
            .metrics
            .model_version_gauge(model)
            .set(version as i64);
        Ok(version)
    }

    /// Admits one request into the coalescing queue — or, on an exact
    /// answer-cache hit, resolves its [`Ticket`] immediately with the
    /// memoized (bit-identical) result: a hit consumes no quota and
    /// counts as neither admitted nor dispatched.
    ///
    /// # Errors
    ///
    /// Rejects at admission: [`ServeError::UnknownModel`] /
    /// [`EngineError::BatchLengthMismatch`](crate::EngineError::BatchLengthMismatch)
    /// for malformed requests, [`ServeError::QuotaExceeded`] when the
    /// model already holds [`ServeConfig::tenant_quota`] lanes queued +
    /// in flight, and [`ServeError::ShutDown`] after shutdown.
    /// Per-request serving failures arrive through the [`Ticket`]
    /// instead.
    pub fn submit(&self, req: ServeRequest) -> Result<Ticket<A::Value>, ServeError> {
        let metrics = &self.shared.metrics;
        metrics.requests.inc();
        // Admission pins the tenant: everything downstream (cache key,
        // coalescing, dispatch) works on this exact tape version even if
        // a reload republishes the model a microsecond later.
        let tenant = match self.shared.pool.admit(&req) {
            Ok(tenant) => tenant,
            Err(e) => {
                match &e {
                    ServeError::UnknownModel { .. } => metrics.rejected_unknown_model.inc(),
                    // The only other admission failure is the evidence
                    // shape mismatch.
                    _ => metrics.rejected_bad_shape.inc(),
                }
                return Err(e);
            }
        };
        let config = &self.shared.config;
        let (tx, rx) = mpsc::channel();
        {
            let mut q = lock_queue(&self.shared.queue);
            if q.shutdown {
                metrics.rejected_shutdown.inc();
                return Err(ServeError::ShutDown);
            }
            // The cache lookup sits under the queue lock (queue before
            // cache, the global order) and after the shutdown check, so
            // a hit can neither race shutdown nor resurrect an entry a
            // concurrent reload is invalidating for new admissions.
            if let Some(cache) = &self.shared.cache {
                let key =
                    CacheKey::for_request(&req.model, tenant.version, req.query, &req.evidence);
                let hit = lock_cache(cache).get(&key).cloned();
                if let Some(result) = hit {
                    metrics.cache_hits.inc();
                    let _ = tx.send((Instant::now(), result));
                    return Ok(Ticket::new(rx));
                }
                metrics.cache_misses.inc();
            }
            // The quota and EWMA books are only kept when their policy
            // is on: with the default config, submit does no extra work
            // under the admission lock.
            let now = Instant::now();
            if config.tenant_quota > 0 {
                // One lookup, and the key is only cloned on a tenant's
                // first lane — this runs under the admission lock.
                match q.tenant_lanes.get_mut(&req.model) {
                    Some(n) if *n >= config.tenant_quota => {
                        metrics.rejected_quota.inc();
                        return Err(ServeError::QuotaExceeded {
                            model: req.model,
                            quota: config.tenant_quota,
                        });
                    }
                    Some(n) => {
                        *n += 1;
                        metrics.tenant_gauge(&req.model).set(*n as i64);
                    }
                    None => {
                        q.tenant_lanes.insert(req.model.clone(), 1);
                        metrics.tenant_gauge(&req.model).set(1);
                    }
                }
            }
            if config.adaptive_wait {
                q.note_arrival(&req.model, req.query, req.priority, now, config.max_wait);
            }
            let waiter = Waiter { enqueued: now, tx };
            // Coalescing matches the tenant by pointer: requests
            // admitted across a reload never share a batch, even though
            // model, query and priority all agree.
            match q.groups.iter_mut().find(|g| {
                Arc::ptr_eq(&g.tenant, &tenant)
                    && g.model == req.model
                    && g.query == req.query
                    && g.priority == req.priority
            }) {
                Some(g) => {
                    g.batch.push(&req.evidence);
                    g.waiters.push(waiter);
                }
                None => {
                    let mut batch = EvidenceBatch::new(req.evidence.len());
                    batch.push(&req.evidence);
                    q.groups.push(Group {
                        tenant,
                        model: req.model,
                        query: req.query,
                        priority: req.priority,
                        batch,
                        waiters: vec![waiter],
                    });
                }
            }
            metrics.admitted.inc();
            metrics.queue_depth.set(q.groups.len() as i64);
        }
        self.shared.ready.notify_one();
        Ok(Ticket::new(rx))
    }

    /// Submits a whole trace and waits for every answer, in request
    /// order. Admission errors land in the corresponding slot.
    pub fn serve_all(&self, requests: &[ServeRequest]) -> Vec<LaneResult<A::Value>> {
        let tickets: Vec<Result<Ticket<A::Value>, ServeError>> =
            requests.iter().map(|r| self.submit(r.clone())).collect();
        tickets
            .into_iter()
            .map(|t| match t {
                Ok(ticket) => ticket.wait(),
                Err(e) => Err(e),
            })
            .collect()
    }

    /// Like [`Server::serve_all`], but the whole drain shares one
    /// `deadline` budget ([`Ticket::wait_deadline`] with the remaining
    /// budget per ticket): a wedged dispatcher yields typed
    /// [`ServeError::Timeout`] slots within roughly `deadline` overall
    /// instead of blocking the caller forever (or for one deadline per
    /// request).
    pub fn serve_all_deadline(
        &self,
        requests: &[ServeRequest],
        deadline: Duration,
    ) -> Vec<LaneResult<A::Value>> {
        let tickets: Vec<Result<Ticket<A::Value>, ServeError>> =
            requests.iter().map(|r| self.submit(r.clone())).collect();
        let overall = Instant::now() + deadline;
        tickets
            .into_iter()
            .map(|t| match t {
                Ok(ticket) => {
                    ticket.wait_deadline(overall.saturating_duration_since(Instant::now()))
                }
                Err(e) => Err(e),
            })
            .collect()
    }

    /// Stops admission, drains the queue and joins the dispatchers.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }
}

impl<A: Arith> Server<A> {
    fn shutdown_inner(&mut self) {
        {
            let mut q = lock_queue(&self.shared.queue);
            q.shutdown = true;
        }
        self.shared.ready.notify_all();
        for w in self.workers.drain(..) {
            // A worker that somehow panicked has nothing left to flush;
            // the remaining workers still drain the queue.
            let _ = w.join();
        }
    }
}

impl<A: Arith> Drop for Server<A> {
    fn drop(&mut self) {
        // Idempotent: after an explicit `shutdown()` the worker list is
        // already drained and this is a no-op.
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::super::pool::tests_support::two_model_pool;
    use super::super::{
        lane_answer_eq, Priority, ServeConfig, ServeRequest, ServeResponse, Server,
    };
    use super::*;
    use problp_ac::compile;
    use problp_bayes::{networks, BatchQuery, Evidence, VarId};
    use problp_num::F64Arith;

    #[test]
    fn mixed_tenant_trace_is_bit_identical_to_serve_one() {
        let pool = two_model_pool();
        // Tight batching limits so the trace actually coalesces.
        let config = ServeConfig {
            max_batch: 8,
            max_wait: Duration::from_micros(200),
            workers: 3,
            ..ServeConfig::default()
        };
        let server = Server::start(pool, config);
        let nets = [
            ("sprinkler", networks::sprinkler()),
            ("asia", networks::asia()),
        ];
        let mut requests = Vec::new();
        for (i, (name, net)) in nets.iter().cycle().take(60).enumerate() {
            let pool_evs = problp_bayes::single_variable_evidences(
                &(0..net.var_count())
                    .map(|v| net.variable(VarId::from_index(v)).arity())
                    .collect::<Vec<_>>(),
            );
            let evidence = pool_evs[i % pool_evs.len()].clone();
            let query = match i % 3 {
                0 => BatchQuery::Marginal,
                1 => BatchQuery::Mpe,
                _ => BatchQuery::Conditional {
                    query_var: net.roots()[0],
                },
            };
            requests.push(ServeRequest {
                model: name.to_string(),
                evidence,
                query,
                // Mix the lanes: priority must never change an answer.
                priority: if i % 2 == 0 {
                    Priority::Interactive
                } else {
                    Priority::Batch
                },
            });
        }
        let served = server.serve_all(&requests);
        for (req, got) in requests.iter().zip(&served) {
            let alone = server.pool().serve_one(req);
            assert!(
                lane_answer_eq(&alone, got),
                "request {req:?}: {alone:?} vs {got:?}"
            );
        }
        server.shutdown();
    }

    #[test]
    fn impossible_conditional_evidence_fails_only_its_own_ticket() {
        let net = networks::sprinkler();
        let pool = two_model_pool();
        let server = Server::start(
            pool,
            ServeConfig {
                max_batch: 4,
                max_wait: Duration::from_micros(100),
                workers: 1,
                ..ServeConfig::default()
            },
        );
        // Pr(Sprinkler=0, Rain=0, WetGrass=1) = 0 in the sprinkler CPTs.
        let mut impossible = Evidence::empty(net.var_count());
        impossible.observe(net.find("Sprinkler").unwrap(), 0);
        impossible.observe(net.find("Rain").unwrap(), 0);
        impossible.observe(net.find("WetGrass").unwrap(), 1);
        let query = BatchQuery::Conditional {
            query_var: net.find("Cloudy").unwrap(),
        };
        let requests = vec![
            ServeRequest {
                model: "sprinkler".to_string(),
                evidence: Evidence::empty(net.var_count()),
                query,
                priority: Priority::Interactive,
            },
            ServeRequest {
                model: "sprinkler".to_string(),
                evidence: impossible,
                query,
                priority: Priority::Interactive,
            },
        ];
        let served = server.serve_all(&requests);
        assert!(matches!(served[0], Ok(ServeResponse::Conditional { .. })));
        assert_eq!(served[1], Err(ServeError::ImpossibleEvidence));
        server.shutdown();
    }

    #[test]
    fn drop_flushes_pending_tickets() {
        let pool = two_model_pool();
        // A huge max_wait: only shutdown's flush can dispatch the lone
        // request below before the batch fills.
        let server = Server::start(
            pool,
            ServeConfig {
                max_batch: 1024,
                max_wait: Duration::from_secs(3600),
                workers: 1,
                ..ServeConfig::default()
            },
        );
        let ticket = server
            .submit(ServeRequest {
                model: "asia".to_string(),
                evidence: Evidence::empty(8),
                query: BatchQuery::Marginal,
                priority: Priority::Batch,
            })
            .unwrap();
        drop(server);
        assert!(matches!(ticket.wait(), Ok(ServeResponse::Marginal { .. })));
    }

    /// Two CPT variants of the same tiny structure, for reload tests:
    /// answers under the two parameterizations must differ.
    fn coin(p: f64) -> problp_bayes::BayesNet {
        let mut b = problp_bayes::BayesNetBuilder::new();
        let rain = b.variable("Rain", 2);
        b.cpt(rain, [], [p, 1.0 - p]).unwrap();
        let wet = b.variable("Wet", 2);
        b.cpt(wet, [rain], [0.9, 0.1, 0.2, 0.8]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn reload_cuts_over_new_admissions_without_draining_in_flight_work() {
        let ac_v1 = compile(&coin(0.2)).unwrap();
        let ac_v2 = compile(&coin(0.7)).unwrap();
        let mut pool = CircuitPool::new(F64Arith::new());
        pool.register("coin", &ac_v1).unwrap();
        // A huge max_wait: both submissions below stay queued until the
        // shutdown flush, proving reload itself never drains the queue.
        let server = Server::start(
            pool,
            ServeConfig {
                max_batch: 1024,
                max_wait: Duration::from_secs(3600),
                workers: 1,
                cache_capacity: 8,
                ..ServeConfig::default()
            },
        );
        let req = ServeRequest {
            model: "coin".to_string(),
            evidence: Evidence::empty(2),
            query: BatchQuery::Marginal,
            priority: Priority::Interactive,
        };
        let old_ticket = server.submit(req.clone()).unwrap();
        assert_eq!(server.reload("coin", &ac_v2).unwrap(), 2);
        assert_eq!(server.stats().model_versions, vec![("coin".to_string(), 2)]);
        // Identical request, admitted after the cut-over: it must land
        // in a *different* group (tenant pointers differ) and must not
        // hit the cache (the version is part of the key — and nothing
        // was cached yet anyway).
        let new_ticket = server.submit(req.clone()).unwrap();
        {
            let q = lock_queue(&server.shared.queue);
            assert_eq!(q.groups.len(), 2, "pre/post-reload lanes never coalesce");
        }
        server.shutdown();
        let old_answer = old_ticket.wait();
        let new_answer = new_ticket.wait();
        // The in-flight lane finished on the tape that admitted it, the
        // new lane on the swapped tape — each bit-identical to a fresh
        // single-version pool.
        let mut ref_v1 = CircuitPool::new(F64Arith::new());
        ref_v1.register("coin", &ac_v1).unwrap();
        let mut ref_v2 = CircuitPool::new(F64Arith::new());
        ref_v2.register("coin", &ac_v2).unwrap();
        assert!(lane_answer_eq(&old_answer, &ref_v1.serve_one(&req)));
        assert!(lane_answer_eq(&new_answer, &ref_v2.serve_one(&req)));
        assert!(
            !lane_answer_eq(&old_answer, &new_answer),
            "the two parameterizations must actually disagree"
        );
    }
}
