//! The HTTP/1.1 query gateway: `POST /v1/query` in front of
//! [`Server::submit`], turning the in-process serving stack into a
//! network service with typed backpressure.
//!
//! One JSON request per connection (the body schema is per query kind,
//! parsed and rendered with [`problp_telemetry::json`] — no new
//! dependencies), authenticated by a per-tenant `Authorization: Bearer`
//! token that the [`GatewayConfig::tokens`] table maps to a model id.
//! The request is submitted at its chosen [`Priority`] and the
//! [`super::LaneResult`] is rendered back as JSON, typed errors
//! included:
//!
//! | outcome | status | body `error` |
//! |---|---|---|
//! | answered | 200 | — |
//! | bad JSON / bad field / bad evidence shape | 400 | `bad_json` / `bad_request` / `bad_shape` |
//! | missing or unknown bearer token | 401 | `unauthorized` |
//! | token maps to an unhosted model | 404 | `unknown_model` |
//! | non-POST on `/v1/query` | 405 | `method_not_allowed` |
//! | client stalled mid-request | 408 | `timeout` |
//! | body over [`GatewayConfig::max_body`] | 413 | `body_too_large` |
//! | impossible conditional evidence | 422 | `impossible_evidence` |
//! | [`ServeError::QuotaExceeded`] | 429 + `Retry-After` | `quota_exceeded` |
//! | head over [`GatewayConfig::max_head`] | 431 | `head_too_large` |
//! | engine failure / internal invariant | 500 | `engine` / `internal` |
//! | shutdown, answer deadline, full worker queue | 503 | `shutting_down` / `timeout` / `overloaded` |
//!
//! Unlike the scrape sidecar's two-worker pool, the gateway sizes its
//! bounded [`WorkerPool`] for query traffic
//! ([`GatewayConfig::http_workers`]), applies per-connection read/write
//! deadlines, and instruments every response:
//! `problp_gateway_requests_total{status=...}`,
//! `problp_gateway_body_bytes`, `problp_gateway_handler_us` (see
//! [`problp_telemetry::metric_names`]).
//!
//! # Request body
//!
//! ```json
//! {
//!   "query": "marginal" | "mpe" | "conditional",
//!   "evidence": [null, 0, 1, null],
//!   "query_var": 2,
//!   "priority": "interactive" | "batch"
//! }
//! ```
//!
//! `evidence` has one entry per model variable — `null` for
//! unobserved, a state index otherwise; `query_var` is required for
//! conditionals; `priority` defaults to interactive. The model is
//! *not* in the body: it comes from the bearer token, so a tenant can
//! only query the model its token grants.
//!
//! # Example
//!
//! ```
//! use problp_ac::compile;
//! use problp_bayes::networks;
//! use problp_engine::serve::gateway::{Gateway, GatewayConfig};
//! use problp_engine::{CircuitPool, ServeConfig, Server};
//! use problp_num::F64Arith;
//! use problp_telemetry::http_post;
//! use std::sync::Arc;
//!
//! let mut pool = CircuitPool::new(F64Arith::new());
//! pool.register("sprinkler", &compile(&networks::sprinkler())?)?;
//! let server = Arc::new(Server::start(pool, ServeConfig::default()));
//! let gateway = Gateway::start(
//!     Arc::clone(&server),
//!     GatewayConfig {
//!         tokens: vec![("tenant-a-token".to_string(), "sprinkler".to_string())],
//!         ..GatewayConfig::default()
//!     },
//! )?;
//! let (code, _headers, body) = http_post(
//!     &gateway.local_addr(),
//!     "/v1/query",
//!     &[("Authorization", "Bearer tenant-a-token".to_string())],
//!     r#"{"query": "marginal", "evidence": [null, null, null, null]}"#,
//! )?;
//! assert_eq!(code, 200);
//! let doc = problp_telemetry::JsonValue::parse(&body)?;
//! let value = doc.get("value").and_then(|v| v.as_f64()).expect("a marginal value");
//! assert!((value - 1.0).abs() < 1e-12);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use problp_bayes::{BatchQuery, Evidence, VarId};
use problp_num::{Arith, Flags};
use problp_telemetry::{
    default_latency_buckets_us, metric_names, read_request, write_response, Counter, HttpError,
    HttpLimits, HttpRequest, JsonValue, MetricsRegistry, WorkerPool,
};

use super::admission::{Priority, ServeError, ServeRequest, ServeResponse};
use super::metrics::query_kind_name;
use super::server::Server;
use crate::error::EngineError;
use crate::kernels::KernelSet;

/// The gateway's deployment knobs. `Default` binds an OS-assigned
/// loopback port with an empty token table (every request 401s until
/// tokens are configured).
#[derive(Clone, Debug)]
pub struct GatewayConfig {
    /// Bind address (`host:port`; port 0 for OS-assigned, read back via
    /// [`Gateway::local_addr`]).
    pub addr: String,
    /// The auth table: `(bearer token, model id)`. A token authorizes
    /// exactly one model; the model id never appears in request bodies.
    pub tokens: Vec<(String, String)>,
    /// Connection-handling worker threads (the bounded pool between the
    /// accept loop and the handlers).
    pub http_workers: usize,
    /// Connections queued for the workers before the accept loop sheds
    /// load with an immediate 503.
    pub backlog: usize,
    /// Max request-line + header bytes before a 431.
    pub max_head: usize,
    /// Max declared body bytes before a 413 (the body is not read).
    pub max_body: usize,
    /// Per-connection socket read/write deadline.
    pub io_timeout: Duration,
    /// How long a handler waits on the request's [`super::Ticket`]
    /// before answering 503 (the request itself stays in flight).
    pub answer_deadline: Duration,
    /// The `Retry-After` advertised on a 429 quota reject.
    pub retry_after: Duration,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            addr: "127.0.0.1:0".to_string(),
            tokens: Vec::new(),
            http_workers: 4,
            backlog: 64,
            max_head: 8 * 1024,
            max_body: 64 * 1024,
            io_timeout: Duration::from_secs(2),
            answer_deadline: Duration::from_secs(10),
            retry_after: Duration::from_secs(1),
        }
    }
}

/// The HTTP status and stable error slug a [`ServeError`] surfaces as:
/// quota pressure is 429, lifecycle (shutdown / answer deadline /
/// disconnect) is 503, caller mistakes are 4xx, and engine or
/// invariant failures are 500. Exposed so tests and the serve-http
/// self-check assert the mapping rather than re-deriving it.
pub fn error_status(e: &ServeError) -> (u16, &'static str) {
    match e {
        ServeError::UnknownModel { .. } => (404, "unknown_model"),
        ServeError::QuotaExceeded { .. } => (429, "quota_exceeded"),
        ServeError::Timeout { .. } => (503, "timeout"),
        ServeError::ShutDown => (503, "shutting_down"),
        ServeError::Disconnected => (503, "disconnected"),
        ServeError::ImpossibleEvidence => (422, "impossible_evidence"),
        ServeError::Engine(EngineError::BatchLengthMismatch { .. }) => (400, "bad_shape"),
        ServeError::Engine(_) => (500, "engine"),
        ServeError::LaneCountMismatch { .. } => (500, "internal"),
    }
}

/// Every status the gateway emits on known paths, precreated so the hot
/// path never pays the registry's registration lock.
const KNOWN_STATUSES: [u16; 12] = [200, 400, 401, 404, 405, 408, 413, 422, 429, 431, 500, 503];

/// Body-size histogram buckets, bytes: queries are small JSON, so the
/// top bucket sits at the default max-body cap.
const BODY_BUCKETS: [u64; 6] = [256, 1024, 4096, 16384, 65536, 262144];

struct GatewayMetrics {
    registry: Arc<MetricsRegistry>,
    by_status: Vec<(u16, Counter)>,
    body_bytes: problp_telemetry::Histogram,
    handler_us: problp_telemetry::Histogram,
}

impl GatewayMetrics {
    fn new(registry: Arc<MetricsRegistry>) -> Self {
        let by_status = KNOWN_STATUSES
            .iter()
            .map(|code| {
                let counter = registry.counter_with(
                    metric_names::GATEWAY_REQUESTS_TOTAL,
                    &[("status", &code.to_string())],
                    "gateway HTTP responses by status code",
                );
                (*code, counter)
            })
            .collect();
        let body_bytes = registry.histogram(
            metric_names::GATEWAY_BODY_BYTES,
            "request body bytes per gateway query",
            &BODY_BUCKETS,
        );
        let handler_us = registry.histogram(
            metric_names::GATEWAY_HANDLER_US,
            "gateway handler latency (auth to rendered response), microseconds",
            default_latency_buckets_us(),
        );
        GatewayMetrics {
            registry,
            by_status,
            body_bytes,
            handler_us,
        }
    }

    fn status_counter(&self, code: u16) -> Counter {
        match self.by_status.iter().find(|(c, _)| *c == code) {
            Some((_, counter)) => counter.clone(),
            None => self.registry.counter_with(
                metric_names::GATEWAY_REQUESTS_TOTAL,
                &[("status", &code.to_string())],
                "gateway HTTP responses by status code",
            ),
        }
    }
}

/// One response decision: status, optional extra headers, JSON body.
struct Reply {
    code: u16,
    retry_after: Option<u64>,
    body: JsonValue,
}

impl Reply {
    fn ok(body: JsonValue) -> Reply {
        Reply {
            code: 200,
            retry_after: None,
            body,
        }
    }

    fn error(code: u16, slug: &str, message: String) -> Reply {
        Reply {
            code,
            retry_after: None,
            body: JsonValue::Object(vec![
                ("error".to_string(), JsonValue::from(slug)),
                ("message".to_string(), JsonValue::from(message)),
            ]),
        }
    }
}

/// A running gateway; stops accepting and joins its threads when
/// dropped (the [`Server`] it fronts is independent and keeps running).
pub struct Gateway {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Gateway {
    /// Binds [`GatewayConfig::addr`] and starts serving queries against
    /// `server` on a background accept thread plus a bounded worker
    /// pool. Gateway metrics are recorded into `server`'s registry, so
    /// one scrape (or one [`problp_telemetry::Sidecar`]) sees the whole
    /// pipeline.
    pub fn start<A>(server: Arc<Server<A>>, config: GatewayConfig) -> io::Result<Gateway>
    where
        A: KernelSet + Clone + Send + Sync + 'static,
        A::Value: Clone + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let metrics = Arc::new(GatewayMetrics::new(server.metrics()));
        let tokens: Arc<HashMap<String, String>> =
            Arc::new(config.tokens.iter().cloned().collect());
        let config = Arc::new(config);
        let handle = thread::Builder::new()
            .name("problp-gateway-accept".to_string())
            .spawn(move || accept_loop(listener, server, config, tokens, metrics, stop_flag))?;
        Ok(Gateway {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops the accept loop, drains the worker queue and joins every
    /// gateway thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop<A>(
    listener: TcpListener,
    server: Arc<Server<A>>,
    config: Arc<GatewayConfig>,
    tokens: Arc<HashMap<String, String>>,
    metrics: Arc<GatewayMetrics>,
    stop: Arc<AtomicBool>,
) where
    A: KernelSet + Clone + Send + Sync + 'static,
    A::Value: Clone + Send + Sync + 'static,
{
    let handler: Arc<dyn Fn(TcpStream) + Send + Sync> = {
        let config = Arc::clone(&config);
        let metrics = Arc::clone(&metrics);
        Arc::new(move |stream| {
            let _ = handle_connection(stream, &server, &config, &tokens, &metrics);
        })
    };
    let pool = WorkerPool::new(
        "problp-gateway",
        config.http_workers,
        config.backlog,
        handler,
    );
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if let Err(stream) = pool.dispatch(stream) {
                    let _ = shed_load(stream, &metrics);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Answers a connection the worker pool could not take: an immediate
/// 503 under a short write timeout, so backpressure is visible to the
/// client instead of an unbounded accept queue.
fn shed_load(mut stream: TcpStream, metrics: &GatewayMetrics) -> io::Result<()> {
    stream.set_write_timeout(Some(Duration::from_millis(100)))?;
    let reply = Reply::error(
        503,
        "overloaded",
        "gateway worker queue is full; retry".to_string(),
    );
    send_reply(&mut stream, metrics, &reply)
}

fn send_reply(stream: &mut TcpStream, metrics: &GatewayMetrics, reply: &Reply) -> io::Result<()> {
    metrics.status_counter(reply.code).inc();
    let mut extra: Vec<(&str, String)> = Vec::new();
    if let Some(secs) = reply.retry_after {
        extra.push(("Retry-After", secs.to_string()));
    }
    write_response(
        stream,
        reply.code,
        "application/json; charset=utf-8",
        &extra,
        reply.body.render().as_bytes(),
    )
}

fn handle_connection<A>(
    stream: TcpStream,
    server: &Server<A>,
    config: &GatewayConfig,
    tokens: &HashMap<String, String>,
    metrics: &GatewayMetrics,
) -> io::Result<()>
where
    A: KernelSet + Clone + Send + Sync + 'static,
    A::Value: Clone + Send + Sync + 'static,
{
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(config.io_timeout))?;
    stream.set_write_timeout(Some(config.io_timeout))?;
    let limits = HttpLimits {
        max_head: config.max_head,
        max_body: config.max_body,
    };
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut stream = stream;
    let request = match read_request(&mut reader, &limits) {
        Ok(request) => request,
        Err(e) => {
            let Some((code, _)) = e.status() else {
                // The socket died; nobody is left to answer.
                return Ok(());
            };
            let slug = match e {
                HttpError::HeadTooLarge { .. } => "head_too_large",
                HttpError::BodyTooLarge { .. } => "body_too_large",
                HttpError::Timeout => "timeout",
                _ => "bad_request",
            };
            send_reply(
                &mut stream,
                metrics,
                &Reply::error(code, slug, e.to_string()),
            )?;
            // Drain the rejected request briefly so closing does not
            // RST the error response out of the client's buffer.
            problp_telemetry::httpd::drain_rejected(&stream, &mut reader);
            return Ok(());
        }
    };
    metrics.body_bytes.observe(request.body.len() as u64);
    let started = Instant::now();
    let reply = route(&request, server, config, tokens);
    metrics.handler_us.observe_duration(started.elapsed());
    send_reply(&mut stream, metrics, &reply)
}

fn route<A>(
    request: &HttpRequest,
    server: &Server<A>,
    config: &GatewayConfig,
    tokens: &HashMap<String, String>,
) -> Reply
where
    A: KernelSet + Clone + Send + Sync + 'static,
    A::Value: Clone + Send + Sync + 'static,
{
    if request.path != "/v1/query" {
        return Reply::error(
            404,
            "not_found",
            format!("unknown path {:?}; try POST /v1/query", request.path),
        );
    }
    if request.method != "POST" {
        return Reply::error(
            405,
            "method_not_allowed",
            "/v1/query only accepts POST".to_string(),
        );
    }
    let Some(model) = bearer_model(request, tokens) else {
        return Reply::error(
            401,
            "unauthorized",
            "missing or unknown bearer token".to_string(),
        );
    };
    let (evidence, query, priority) = match decode_query(&request.body) {
        Ok(parts) => parts,
        Err((code, slug, message)) => return Reply::error(code, slug, message),
    };
    let ticket = match server.submit(ServeRequest {
        model: model.clone(),
        evidence,
        query,
        priority,
    }) {
        Ok(ticket) => ticket,
        Err(e) => return serve_error_reply(&e, config),
    };
    match ticket.wait_deadline(config.answer_deadline) {
        Ok(response) => Reply::ok(render_response(
            server.pool().context(),
            &model,
            query,
            &response,
        )),
        Err(e) => serve_error_reply(&e, config),
    }
}

/// The model a request's `Authorization: Bearer` token grants, if any.
fn bearer_model(request: &HttpRequest, tokens: &HashMap<String, String>) -> Option<String> {
    let auth = request.header("authorization")?;
    let (scheme, token) = auth.split_once(' ')?;
    if !scheme.eq_ignore_ascii_case("bearer") {
        return None;
    }
    tokens.get(token.trim()).cloned()
}

fn serve_error_reply(e: &ServeError, config: &GatewayConfig) -> Reply {
    let (code, slug) = error_status(e);
    let mut reply = Reply::error(code, slug, e.to_string());
    if code == 429 {
        reply.retry_after = Some(config.retry_after.as_secs().max(1));
    }
    reply
}

/// Decodes one `/v1/query` body into the submit arguments, or the
/// `(status, slug, message)` it should be rejected with.
#[allow(clippy::type_complexity)]
fn decode_query(
    body: &[u8],
) -> Result<(Evidence, BatchQuery, Priority), (u16, &'static str, String)> {
    let text = std::str::from_utf8(body)
        .map_err(|_| (400, "bad_json", "body is not UTF-8".to_string()))?;
    let doc = JsonValue::parse(text)
        .map_err(|e| (400, "bad_json", format!("body is not valid JSON: {e}")))?;
    if doc.get("query").is_none() && doc.as_array().is_some() {
        return Err((400, "bad_request", "body must be a JSON object".to_string()));
    }
    let kind = doc
        .get("query")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| {
            (
                400,
                "bad_request",
                "missing \"query\" (marginal | mpe | conditional)".to_string(),
            )
        })?;
    let lanes = doc
        .get("evidence")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| {
            (
                400,
                "bad_request",
                "missing \"evidence\" (one entry per variable: null or a state index)".to_string(),
            )
        })?;
    let mut evidence = Evidence::empty(lanes.len());
    for (i, entry) in lanes.iter().enumerate() {
        match entry {
            JsonValue::Null => {}
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n < 1e9 => {
                evidence.observe(VarId::from_index(i), *n as usize);
            }
            other => {
                return Err((
                    400,
                    "bad_request",
                    format!("evidence[{i}] must be null or a state index, got {other:?}"),
                ))
            }
        }
    }
    let query = match kind {
        "marginal" => BatchQuery::Marginal,
        "mpe" => BatchQuery::Mpe,
        "conditional" => {
            let var = doc
                .get("query_var")
                .and_then(JsonValue::as_f64)
                .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                .map(|n| n as usize)
                .ok_or_else(|| {
                    (
                        400,
                        "bad_request",
                        "conditional queries need an integer \"query_var\"".to_string(),
                    )
                })?;
            if var >= evidence.len() {
                return Err((
                    400,
                    "bad_request",
                    format!(
                        "query_var {var} is out of range for {} evidence entries",
                        evidence.len()
                    ),
                ));
            }
            BatchQuery::Conditional {
                query_var: VarId::from_index(var),
            }
        }
        other => {
            return Err((
                400,
                "bad_request",
                format!("unknown query kind {other:?} (marginal | mpe | conditional)"),
            ))
        }
    };
    let priority = match doc.get("priority").and_then(JsonValue::as_str) {
        None => Priority::Interactive,
        Some("interactive") => Priority::Interactive,
        Some("batch") => Priority::Batch,
        Some(other) => {
            return Err((
                400,
                "bad_request",
                format!("unknown priority {other:?} (interactive | batch)"),
            ))
        }
    };
    Ok((evidence, query, priority))
}

/// The raised sticky-flag names, in the fixed catalog order.
fn flags_json(flags: &Flags) -> JsonValue {
    let mut raised = Vec::new();
    for (name, on) in [
        ("overflow", flags.overflow),
        ("underflow", flags.underflow),
        ("inexact", flags.inexact),
        ("invalid", flags.invalid),
    ] {
        if on {
            raised.push(JsonValue::from(name));
        }
    }
    JsonValue::Array(raised)
}

/// Renders one answered lane. Values are projected to `f64` via the
/// pool's [`Arith::to_f64`] — the identity for `F64Arith`, so the JSON
/// round-trips bit-identically there (the serve-http self-check pins
/// this against [`super::CircuitPool::serve_one`]).
fn render_response<A: Arith>(
    ctx: &A,
    model: &str,
    query: BatchQuery,
    response: &ServeResponse<A::Value>,
) -> JsonValue {
    let mut fields = vec![
        ("model".to_string(), JsonValue::from(model)),
        ("query".to_string(), JsonValue::from(query_kind_name(query))),
    ];
    match response {
        ServeResponse::Marginal { value, flags } => {
            fields.push(("value".to_string(), JsonValue::from(ctx.to_f64(value))));
            fields.push(("flags".to_string(), flags_json(flags)));
        }
        ServeResponse::Mpe {
            assignment,
            value,
            flags,
        } => {
            fields.push((
                "assignment".to_string(),
                JsonValue::Array(assignment.iter().map(|s| JsonValue::from(*s)).collect()),
            ));
            fields.push(("value".to_string(), JsonValue::from(ctx.to_f64(value))));
            fields.push(("flags".to_string(), flags_json(flags)));
        }
        ServeResponse::Conditional {
            posteriors,
            prediction,
            flags,
        } => {
            fields.push((
                "posteriors".to_string(),
                JsonValue::Array(posteriors.iter().map(|p| JsonValue::from(*p)).collect()),
            ));
            fields.push(("prediction".to_string(), JsonValue::from(*prediction)));
            fields.push(("flags".to_string(), flags_json(flags)));
        }
    }
    JsonValue::Object(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_status_mapping_is_stable() {
        assert_eq!(
            error_status(&ServeError::QuotaExceeded {
                model: "m".to_string(),
                quota: 2
            }),
            (429, "quota_exceeded")
        );
        assert_eq!(error_status(&ServeError::ShutDown), (503, "shutting_down"));
        assert_eq!(
            error_status(&ServeError::Timeout {
                waited: Duration::from_secs(1)
            })
            .0,
            503
        );
        assert_eq!(
            error_status(&ServeError::UnknownModel {
                model: "m".to_string()
            }),
            (404, "unknown_model")
        );
        assert_eq!(
            error_status(&ServeError::ImpossibleEvidence),
            (422, "impossible_evidence")
        );
        assert_eq!(
            error_status(&ServeError::Engine(EngineError::BatchLengthMismatch {
                batch: 4,
                circuit: 2,
            }))
            .0,
            400
        );
        assert_eq!(
            error_status(&ServeError::LaneCountMismatch {
                expected: 2,
                got: 1
            })
            .0,
            500
        );
    }

    #[test]
    fn decode_rejects_each_bad_field() {
        let ok = br#"{"query": "marginal", "evidence": [null, 0]}"#;
        assert!(decode_query(ok).is_ok());
        let cases: [(&[u8], &str); 7] = [
            (b"not json", "bad_json"),
            (br#"[1, 2]"#, "bad_request"),
            (br#"{"evidence": [null]}"#, "bad_request"),
            (br#"{"query": "marginal"}"#, "bad_request"),
            (
                br#"{"query": "marginal", "evidence": [1.5]}"#,
                "bad_request",
            ),
            (
                br#"{"query": "conditional", "evidence": [null, null]}"#,
                "bad_request",
            ),
            (
                br#"{"query": "marginal", "evidence": [null], "priority": "turbo"}"#,
                "bad_request",
            ),
        ];
        for (body, want_slug) in cases {
            match decode_query(body) {
                Err((400, slug, _)) => assert_eq!(slug, want_slug, "{body:?}"),
                other => panic!("{body:?} should fail 400, got {other:?}"),
            }
        }
        // query_var out of range.
        match decode_query(br#"{"query": "conditional", "query_var": 9, "evidence": [null]}"#) {
            Err((400, "bad_request", msg)) => assert!(msg.contains("out of range")),
            other => panic!("expected out-of-range reject, got {other:?}"),
        }
    }

    #[test]
    fn decode_builds_the_evidence_and_priority() {
        let (evidence, query, priority) = decode_query(
            br#"{"query": "conditional", "query_var": 0, "evidence": [null, 2, null, 1], "priority": "batch"}"#,
        )
        .expect("well-formed");
        assert_eq!(evidence.len(), 4);
        assert_eq!(evidence.state(VarId::from_index(1)), Some(2));
        assert_eq!(evidence.state(VarId::from_index(2)), None);
        assert_eq!(evidence.state(VarId::from_index(3)), Some(1));
        assert!(matches!(query, BatchQuery::Conditional { .. }));
        assert_eq!(priority, Priority::Batch);
    }
}
