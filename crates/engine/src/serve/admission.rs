//! The serving layer's request/response vocabulary and admission
//! policy: [`ServeRequest`] in, [`ServeResponse`] (or a typed
//! [`ServeError`]) out, with [`ServeConfig`] governing how requests are
//! admitted, coalesced, prioritized and cached. The admission *logic*
//! (quota books, shutdown gate, cache lookup) lives in
//! `server.rs::Server::submit`; this module owns the types it speaks.

use std::time::Duration;

use problp_bayes::{BatchQuery, Evidence};
use problp_num::Flags;

use crate::error::EngineError;

/// Errors of the serving layer. Admission errors ([`ServeError::UnknownModel`],
/// length mismatches) are returned by [`super::Server::submit`] directly;
/// everything else arrives through the request's [`super::Ticket`].
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The request named a model the pool does not host.
    UnknownModel {
        /// The unknown model id.
        model: String,
    },
    /// The model already holds its full quota of queued + in-flight
    /// lanes ([`ServeConfig::tenant_quota`]); the request was rejected
    /// at admission so other tenants keep their share of the queue.
    QuotaExceeded {
        /// The over-quota model id.
        model: String,
        /// The configured per-tenant lane cap.
        quota: usize,
    },
    /// A [`super::Ticket::wait_deadline`] expired before the dispatcher
    /// delivered a result. The request itself is still in flight — the
    /// ticket can be waited on again.
    Timeout {
        /// How long the caller was willing to wait.
        waited: Duration,
    },
    /// Internal invariant breach: an evaluated group produced fewer
    /// result lanes than it has waiting requests. The unmatched
    /// requests receive this error instead of hanging on their tickets
    /// forever (matched lanes keep their answers: lane `i` belongs to
    /// waiter `i` by construction).
    LaneCountMismatch {
        /// Result lanes the group was owed.
        expected: usize,
        /// Result lanes the evaluation actually produced.
        got: usize,
    },
    /// The underlying engine rejected or lost the coalesced batch; a
    /// panic inside one evaluation arrives here as
    /// [`EngineError::WorkerPanic`].
    Engine(EngineError),
    /// A conditional request whose evidence has probability zero under
    /// its model: no posterior exists
    /// ([`crate::query::ConditionalLaneStatus::ImpossibleEvidence`]).
    ImpossibleEvidence,
    /// The server is shutting down (or has shut down) and no longer
    /// admits requests.
    ShutDown,
    /// The response channel was dropped before a result arrived — the
    /// serving process is tearing down.
    Disconnected,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownModel { model } => {
                write!(f, "no model named {model:?} is registered in the pool")
            }
            ServeError::QuotaExceeded { model, quota } => write!(
                f,
                "model {model:?} already holds its quota of {quota} queued + in-flight lanes"
            ),
            ServeError::Timeout { waited } => {
                write!(f, "no result arrived within {waited:?}")
            }
            ServeError::LaneCountMismatch { expected, got } => write!(
                f,
                "internal error: a group of {expected} requests produced {got} result lanes"
            ),
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::ImpossibleEvidence => write!(
                f,
                "the evidence has probability zero under the model: no posterior exists"
            ),
            ServeError::ShutDown => write!(f, "the server is shut down"),
            ServeError::Disconnected => write!(f, "the response channel was dropped"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

/// The priority class of a [`ServeRequest`]: which lane of the
/// admission queue it coalesces in, and how soon the dispatcher picks
/// that lane.
///
/// Among ripe groups, `Interactive` dispatches before `Batch`; a
/// `Batch` group whose head-of-line request has waited
/// [`ServeConfig::priority_aging`] is promoted to the interactive rank,
/// bounding how long a saturating interactive tenant can starve it.
/// Priority never changes an answer, only when it is computed.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum Priority {
    /// Latency-sensitive traffic: dispatched first. The default.
    #[default]
    Interactive,
    /// Throughput traffic: dispatched when no interactive group is
    /// ripe, or once it has aged past [`ServeConfig::priority_aging`].
    Batch,
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Priority::Interactive => write!(f, "interactive"),
            Priority::Batch => write!(f, "batch"),
        }
    }
}

/// One serving request: which model, which evidence, which query, and
/// which priority lane it rides in.
///
/// Requests with the same `(model, query, priority)` are coalesced into
/// one engine batch; `priority` picks the queue lane (see [`Priority`])
/// and never changes the answer.
#[derive(Clone, PartialEq, Debug)]
pub struct ServeRequest {
    /// The model id the request targets (as registered in the pool).
    pub model: String,
    /// The request's evidence instance.
    pub evidence: Evidence,
    /// What to compute for it.
    pub query: BatchQuery,
    /// The priority lane ([`Priority::Interactive`] by default).
    pub priority: Priority,
}

/// One serving answer, mirroring the request's [`BatchQuery`] kind.
///
/// `flags` are **batch-scope**: the sticky flags of the whole coalesced
/// batch the request was served in (like [`crate::BatchResult::flags`]),
/// so they are a superset of the flags the request would raise alone —
/// batch mates can contribute `inexact`/`underflow` bits. The answer
/// payloads (values, assignments, posteriors) are coalescing-invariant;
/// compare them with [`ServeResponse::answer_eq`], which ignores flags.
#[derive(Clone, PartialEq, Debug)]
pub enum ServeResponse<V> {
    /// `Pr(e)` under the model.
    Marginal {
        /// The marginal value.
        value: V,
        /// Batch-aggregated sticky flags.
        flags: Flags,
    },
    /// The most probable completion of the evidence and its joint value.
    Mpe {
        /// One state per variable.
        assignment: Vec<usize>,
        /// `max_x Pr(x, e)`.
        value: V,
        /// Batch-aggregated sticky flags.
        flags: Flags,
    },
    /// The posterior over the query variable's states.
    Conditional {
        /// `posteriors[s] = Pr(q = s | e)`.
        posteriors: Vec<f64>,
        /// The argmax state — the classifier decision.
        prediction: usize,
        /// Batch-aggregated sticky flags.
        flags: Flags,
    },
}

impl<V: PartialEq> ServeResponse<V> {
    /// Answer-payload equality, ignoring `flags`: two servings of the
    /// same request in different coalesced batches always agree on the
    /// payload (posteriors bit for bit), but their batch-scope flags may
    /// differ with the batch composition. This is the
    /// "coalescing never changes answers" relation the serve property
    /// tests pin.
    pub fn answer_eq(&self, other: &Self) -> bool {
        match (self, other) {
            (
                ServeResponse::Marginal { value: a, .. },
                ServeResponse::Marginal { value: b, .. },
            ) => a == b,
            (
                ServeResponse::Mpe {
                    assignment: aa,
                    value: av,
                    ..
                },
                ServeResponse::Mpe {
                    assignment: ba,
                    value: bv,
                    ..
                },
            ) => aa == ba && av == bv,
            (
                ServeResponse::Conditional {
                    posteriors: ap,
                    prediction: apred,
                    ..
                },
                ServeResponse::Conditional {
                    posteriors: bp,
                    prediction: bpred,
                    ..
                },
            ) => {
                apred == bpred
                    && ap.len() == bp.len()
                    && ap.iter().zip(bp).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            _ => false,
        }
    }
}

/// The per-request result type routed back through a [`super::Ticket`].
pub type LaneResult<V> = Result<ServeResponse<V>, ServeError>;

/// Answer-payload equality of two per-request results: `Ok` sides
/// compare via [`ServeResponse::answer_eq`] (flags ignored — they are
/// batch-scope), `Err` sides via `==`.
pub fn lane_answer_eq<V: PartialEq>(a: &LaneResult<V>, b: &LaneResult<V>) -> bool {
    match (a, b) {
        (Ok(x), Ok(y)) => x.answer_eq(y),
        (Err(x), Err(y)) => x == y,
        _ => false,
    }
}

/// Admission and dispatch policy of a [`super::Server`].
///
/// # Scheduling order
///
/// A group (all queued requests of one `(model, query, priority)`) is
/// **ripe** once it holds `max_batch` lanes or its head-of-line request
/// has waited the group's *effective wait* — `max_wait`, or, with
/// `adaptive_wait`, `min(max_wait, arrival-interval EWMA × max_batch)`
/// so a hot stream stops paying the coalescing wait its batch does not
/// need. Among ripe groups a free dispatcher picks by
/// `(priority rank, oldest head)`: [`Priority::Interactive`] before
/// [`Priority::Batch`], except that a group whose head has waited
/// `priority_aging` competes at the interactive rank (anti-starvation).
/// Admission itself is capped per tenant by `tenant_quota`. None of
/// these knobs changes any answer — only when (or whether) a request is
/// served: with `cache_capacity` > 0, repeated requests may be answered
/// from the exact answer cache, whose hits are bit-identical to
/// uncached evaluation (see the module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ServeConfig {
    /// Coalesce at most this many requests into one engine batch.
    pub max_batch: usize,
    /// Dispatch a non-full group once its oldest request has waited this
    /// long (the cap of the effective wait when `adaptive_wait` is on).
    pub max_wait: Duration,
    /// Dispatcher worker threads (each evaluates one coalesced batch at
    /// a time). Threads *inside* each engine evaluation are a pool
    /// property instead ([`super::CircuitPool::with_engine_threads`],
    /// default 1): parallelism comes from the dispatcher shards.
    pub workers: usize,
    /// Per-tenant admission quota: at most this many lanes queued +
    /// in flight per model; the request beyond the cap is rejected with
    /// [`ServeError::QuotaExceeded`]. `0` (the default) disables the
    /// quota.
    pub tenant_quota: usize,
    /// The anti-starvation bound of the priority lanes: a
    /// [`Priority::Batch`] group whose head-of-line request has waited
    /// this long is promoted to the interactive dispatch rank.
    pub priority_aging: Duration,
    /// Shrink the coalescing wait of hot streams: when `true`, a
    /// group's effective wait is `min(max_wait, EWMA × max_batch)`
    /// (the expected time to fill its batch) instead of the flat
    /// `max_wait`. Off by default.
    pub adaptive_wait: bool,
    /// Entries of the exact answer cache: memoized
    /// `(model version, evidence, query) → answer` lanes, LRU-evicted
    /// beyond this capacity. A hit resolves the ticket immediately with
    /// a bit-identical payload, consuming no queue space and no quota.
    /// `0` (the default) disables the cache.
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 64,
            max_wait: Duration::from_micros(500),
            workers: std::thread::available_parallelism().map_or(2, |n| n.get().min(8)),
            tenant_quota: 0,
            priority_aging: Duration::from_millis(20),
            adaptive_wait: false,
            cache_capacity: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::pool::tests_support::{marginal, two_model_pool};
    use super::super::queue::lock_queue;
    use super::super::{CircuitPool, Server};
    use super::*;
    use problp_ac::compile;

    #[test]
    fn admission_rejects_unknown_models_and_bad_shapes() {
        let pool = two_model_pool();
        let server = Server::start(pool, ServeConfig::default());
        let missing = server.submit(ServeRequest {
            model: "nonesuch".to_string(),
            evidence: Evidence::empty(4),
            query: BatchQuery::Marginal,
            priority: Priority::Interactive,
        });
        assert!(matches!(missing, Err(ServeError::UnknownModel { .. })));
        let ragged = server.submit(ServeRequest {
            model: "sprinkler".to_string(),
            evidence: Evidence::empty(99),
            query: BatchQuery::Marginal,
            priority: Priority::Batch,
        });
        assert!(matches!(
            ragged,
            Err(ServeError::Engine(EngineError::BatchLengthMismatch { .. }))
        ));
        server.shutdown();
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let pool = two_model_pool();
        let server = Server::start(pool, ServeConfig::default());
        {
            let mut q = lock_queue(&server.shared.queue);
            q.shutdown = true;
        }
        let late = server.submit(ServeRequest {
            model: "sprinkler".to_string(),
            evidence: Evidence::empty(4),
            query: BatchQuery::Marginal,
            priority: Priority::Interactive,
        });
        assert!(matches!(late, Err(ServeError::ShutDown)));
    }

    #[test]
    fn batch_scope_flags_do_not_break_answer_equality() {
        use super::super::lane_answer_eq;
        use problp_num::{FixedArith, FixedFormat};
        use std::time::Duration;

        // A 12-variable chain of dyadic CPTs: every parameter is exact
        // in fixed(1,10), so const conversion raises nothing. The empty
        // evidence evaluates to exactly 1.0 (clean flags) while a fully
        // observed lane hits 2^-12, which underflows the format — two
        // lanes of the same (model, query) group with *different*
        // sticky flags. Coalescing them must still reproduce each
        // answer payload bit for bit.
        let mut b = problp_bayes::BayesNetBuilder::new();
        let mut prev = b.variable("X0", 2);
        b.cpt(prev, [], [0.5, 0.5]).unwrap();
        for i in 1..12 {
            let v = b.variable(format!("X{i}"), 2);
            b.cpt(v, [prev], [0.5, 0.5, 0.5, 0.5]).unwrap();
            prev = v;
        }
        let net = b.build().unwrap();
        let ac = compile(&net).unwrap();
        let mut pool = CircuitPool::new(FixedArith::new(FixedFormat::new(1, 10).unwrap()));
        pool.register("chain", &ac).unwrap();
        let server = Server::start(
            pool,
            ServeConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(50),
                workers: 1,
                ..ServeConfig::default()
            },
        );
        let clean = ServeRequest {
            model: "chain".to_string(),
            evidence: Evidence::empty(12),
            query: BatchQuery::Marginal,
            priority: Priority::Interactive,
        };
        let noisy = ServeRequest {
            model: "chain".to_string(),
            evidence: Evidence::from_assignment(&[0; 12]),
            query: BatchQuery::Marginal,
            priority: Priority::Interactive,
        };
        let served = server.serve_all(&[clean.clone(), noisy.clone()]);
        for (req, got) in [clean, noisy].iter().zip(&served) {
            let alone = server.pool().serve_one(req);
            assert!(lane_answer_eq(&alone, got), "{req:?}: {alone:?} vs {got:?}");
        }
        // The lanes really do disagree on flags: alone, the empty
        // evidence is flag-clean while the observed lane is not.
        match server.pool().serve_one(&ServeRequest {
            model: "chain".to_string(),
            evidence: Evidence::empty(12),
            query: BatchQuery::Marginal,
            priority: Priority::Interactive,
        }) {
            Ok(ServeResponse::Marginal { flags, .. }) => {
                assert!(!flags.any(), "empty evidence is exact: {flags:?}")
            }
            other => panic!("expected a marginal, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn serve_errors_display() {
        let e = ServeError::UnknownModel {
            model: "m".to_string(),
        };
        assert!(e.to_string().contains("m"));
        assert!(ServeError::ImpossibleEvidence
            .to_string()
            .contains("probability zero"));
        let e: ServeError = EngineError::NeedsFullValues.into();
        assert!(matches!(e, ServeError::Engine(_)));
        use std::error::Error;
        assert!(e.source().is_some());
        let e = ServeError::QuotaExceeded {
            model: "hot".to_string(),
            quota: 8,
        };
        assert!(e.to_string().contains("hot") && e.to_string().contains('8'));
        let e = ServeError::Timeout {
            waited: Duration::from_millis(5),
        };
        assert!(e.to_string().contains("5ms"));
        let e = ServeError::LaneCountMismatch {
            expected: 3,
            got: 1,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('1'));
    }

    #[test]
    fn quota_rejects_only_the_hot_tenant() {
        use std::time::Duration;
        let pool = two_model_pool();
        // Nothing dispatches before shutdown: quota pressure builds.
        let server = Server::start(
            pool,
            ServeConfig {
                max_batch: 1024,
                max_wait: Duration::from_secs(3600),
                workers: 1,
                tenant_quota: 3,
                ..ServeConfig::default()
            },
        );
        let tickets: Vec<_> = (0..3)
            .map(|_| {
                server
                    .submit(marginal("sprinkler", 4, Priority::Interactive))
                    .unwrap()
            })
            .collect();
        // The 4th sprinkler lane is over quota — on any priority lane.
        for priority in [Priority::Interactive, Priority::Batch] {
            match server.submit(marginal("sprinkler", 4, priority)) {
                Err(ServeError::QuotaExceeded { model, quota }) => {
                    assert_eq!(model, "sprinkler");
                    assert_eq!(quota, 3);
                }
                other => panic!("expected QuotaExceeded, got {other:?}"),
            }
        }
        // The other tenant is untouched by sprinkler's saturation.
        let asia = server.submit(marginal("asia", 8, Priority::Interactive));
        assert!(asia.is_ok());
        // The queued lanes are still answered on shutdown's flush.
        server.shutdown();
        for t in tickets {
            assert!(matches!(t.wait(), Ok(ServeResponse::Marginal { .. })));
        }
    }

    #[test]
    fn quota_lanes_are_released_once_served() {
        use std::time::Duration;
        let pool = two_model_pool();
        let server = Server::start(
            pool,
            ServeConfig {
                max_batch: 2,
                max_wait: Duration::from_micros(50),
                workers: 1,
                tenant_quota: 2,
                ..ServeConfig::default()
            },
        );
        for round in 0..4 {
            let t1 = server
                .submit(marginal("sprinkler", 4, Priority::Interactive))
                .unwrap();
            // The released quota must be visible by the time a ticket
            // resolves: serve rounds never wedge on stale accounting.
            assert!(
                matches!(t1.wait(), Ok(ServeResponse::Marginal { .. })),
                "round {round}"
            );
        }
        server.shutdown();
    }
}
