//! The dispatcher: worker shards that pop ripe coalesced groups off the
//! queue, sweep each group's batch through its pinned tenant's engine
//! once, fill the answer cache, and route per-lane results to their
//! tickets.
//!
//! A job carries the `Arc<Tenant>` it was admitted against, so a
//! [`super::Server::reload`] between admission and dispatch never
//! changes what a ticket resolves to: in-flight work finishes on the
//! tape version that admitted it, while the reload only redirects *new*
//! admissions.

use std::panic::AssertUnwindSafe;
use std::time::{Duration, Instant};

use problp_bayes::BatchQuery;
use problp_telemetry::Gauge;

use super::admission::{Priority, ServeError, ServeResponse};
use super::cache::{cacheable, lock_cache, CacheKey};
use super::metrics::query_kind_idx;
use super::queue::{lock_queue, next_deadline, take_job, Job};
use super::server::Shared;
use crate::error::{panic_message, EngineError};
use crate::kernels::{KernelKind, KernelSet};
use problp_num::Arith;

/// One dispatcher shard: wait for a ripe group, coalesce it, evaluate,
/// route the per-lane results, repeat. Returns when the queue is shut
/// down and drained.
pub(crate) fn worker_loop<A>(shared: &Shared<A>)
where
    A: KernelSet + Clone + Send + Sync,
    A::Value: Clone + Send + Sync,
{
    // Liveness bookkeeping is a drop guard so a panicking evaluation
    // that somehow unwinds past the dispatch catch still decrements the
    // live-worker gauge (and `/healthz` turns red when all shards die).
    struct WorkerAlive(Gauge);
    impl Drop for WorkerAlive {
        fn drop(&mut self) {
            self.0.add(-1);
        }
    }
    let metrics = &shared.metrics;
    metrics.live_workers.add(1);
    let _alive = WorkerAlive(metrics.live_workers.clone());
    loop {
        let job = {
            let mut q = lock_queue(&shared.queue);
            loop {
                let flush = q.shutdown;
                if let Some(job) = take_job(&mut q, &shared.config, flush, metrics) {
                    // More work may be ripe; make sure an idle shard
                    // looks, since our notify was consumed by this pop.
                    if !q.groups.is_empty() {
                        shared.ready.notify_one();
                    }
                    break Some(job);
                }
                if q.shutdown {
                    break None;
                }
                // With pending groups, sleep until the earliest
                // max_wait deadline; on an empty queue, block until a
                // submit (or shutdown) notifies — no idle polling.
                q = match next_deadline(&q, &shared.config) {
                    Some(deadline) => {
                        let wait = deadline
                            .saturating_duration_since(Instant::now())
                            .max(Duration::from_micros(50));
                        shared
                            .ready
                            .wait_timeout(q, wait)
                            .unwrap_or_else(|poisoned| poisoned.into_inner())
                            .0
                    }
                    None => shared
                        .ready
                        .wait(q)
                        .unwrap_or_else(|poisoned| poisoned.into_inner()),
                };
            }
        };
        let Some(job) = job else {
            return;
        };
        dispatch(shared, job);
    }
}

/// Releases a finished job's lanes from its tenant's quota budget.
/// Runs *before* the results are sent, so by the time a ticket
/// resolves, the tenant's quota headroom is already restored. A no-op
/// (no lock taken) when quotas are off — no books are kept then.
pub(crate) fn release_tenant_lanes<A: Arith>(shared: &Shared<A>, model: &str, lanes: usize) {
    if shared.config.tenant_quota == 0 {
        return;
    }
    let mut q = lock_queue(&shared.queue);
    if let Some(n) = q.tenant_lanes.get_mut(model) {
        *n = n.saturating_sub(lanes);
        shared.metrics.tenant_gauge(model).set(*n as i64);
        if *n == 0 {
            q.tenant_lanes.remove(model);
        }
    }
}

/// Evaluates one job's coalesced batch and sends each lane's result to
/// its ticket. A panic inside the evaluation fails this batch's
/// requests and nothing else; a lane-count mismatch (the evaluation
/// returning fewer results than the job has waiters) fails the
/// unmatched waiters with [`ServeError::LaneCountMismatch`] instead of
/// leaving their tickets hanging until shutdown.
pub(crate) fn dispatch<A>(shared: &Shared<A>, job: Job<A>)
where
    A: KernelSet + Clone + Send + Sync,
    A::Value: Clone + Send + Sync,
{
    let metrics = &shared.metrics;
    metrics.dispatches.inc();
    // The job evaluates on the tenant it was admitted against — a
    // concurrent reload republished the model under a new Arc and does
    // not touch this batch.
    let tenant = &job.tenant;
    // The whole batch sweeps the query's tape once: every lane executes
    // every instruction.
    let engine = match job.query {
        BatchQuery::Mpe => &tenant.mpe,
        _ => &tenant.sum,
    };
    let lanes = job.batch.lanes() as u64;
    metrics
        .tape_instrs
        .add(engine.tape().instrs().len() as u64 * lanes);
    if let Some(fused) = engine.fused_tape() {
        metrics
            .fused_instrs
            .add(fused.instrs().len() as u64 * lanes);
    }
    let kernel_idx = KernelKind::ALL
        .iter()
        .position(|k| *k == engine.kernel())
        .unwrap_or(0);
    metrics.kernel_dispatches[kernel_idx].inc();
    let started = Instant::now();
    let results = std::panic::catch_unwind(AssertUnwindSafe(|| {
        shared.pool.evaluate_group(tenant, job.query, &job.batch)
    }));
    let completed = Instant::now();
    metrics.evaluate_us[query_kind_idx(job.query)]
        .observe_duration(completed.saturating_duration_since(started));
    release_tenant_lanes(shared, &job.model, job.waiters.len());
    match results {
        Ok(per_lane) => {
            // The flags are batch-scope (identical across the group's
            // Ok lanes); fold the first one into the raise counters.
            if let Some(flags) = per_lane.iter().find_map(|r| match r {
                Ok(ServeResponse::Marginal { flags, .. })
                | Ok(ServeResponse::Mpe { flags, .. })
                | Ok(ServeResponse::Conditional { flags, .. }) => Some(*flags),
                Err(_) => None,
            }) {
                metrics.note_flags(flags);
            }
            // Memoize the deterministic lanes *before* resolving any
            // ticket, so a caller that resubmits the moment its wait()
            // returns observes the hit.
            if let Some(cache) = &shared.cache {
                let mut c = lock_cache(cache);
                let mut evicted = 0u64;
                for (lane, r) in per_lane.iter().enumerate().take(job.batch.lanes()) {
                    if cacheable(r) {
                        let key = CacheKey::for_lane(
                            &job.model,
                            tenant.version,
                            job.query,
                            &job.batch,
                            lane,
                        );
                        evicted += c.insert(key, r.clone());
                    }
                }
                if evicted > 0 {
                    metrics.cache_evictions.add(evicted);
                }
            }
            let sojourn = &metrics.sojourn_us[query_kind_idx(job.query)]
                [(job.priority == Priority::Batch) as usize];
            // Every waiter gets an answer: lane i belongs to waiter i,
            // and any waiter beyond the produced lanes gets a typed
            // internal error rather than a silent ticket hang.
            let expected = job.waiters.len();
            let got = per_lane.len();
            let mut lanes = per_lane.into_iter();
            for w in &job.waiters {
                sojourn.observe_duration(completed.saturating_duration_since(w.enqueued));
                let r = lanes
                    .next()
                    .unwrap_or(Err(ServeError::LaneCountMismatch { expected, got }));
                let _ = w.tx.send((completed, r));
            }
        }
        Err(payload) => {
            let message = panic_message(payload);
            for w in &job.waiters {
                let _ = w.tx.send((
                    completed,
                    Err(ServeError::Engine(EngineError::WorkerPanic {
                        message: message.clone(),
                    })),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::pool::tests_support::two_model_pool;
    use super::super::queue::{QueueState, Waiter};
    use super::super::{metrics::ServeMetrics, ServeConfig, ServeResponse};
    use super::*;
    use problp_bayes::{networks, Evidence, EvidenceBatch};
    use problp_telemetry::MetricsRegistry;
    use std::sync::{mpsc, Arc, Condvar, Mutex};

    #[test]
    fn dispatch_fails_unmatched_waiters_instead_of_hanging() {
        let net = networks::sprinkler();
        let pool = two_model_pool();
        let tenant = pool.tenant("sprinkler").unwrap();
        let shared = Arc::new(Shared {
            pool,
            config: ServeConfig::default(),
            queue: Mutex::new(QueueState::new()),
            ready: Condvar::new(),
            cache: None,
            metrics: ServeMetrics::new(Arc::new(MetricsRegistry::new())),
        });
        // A 1-lane batch owing 2 waiters: evaluate_group will produce
        // one result for two tickets.
        let mut batch = EvidenceBatch::new(net.var_count());
        batch.push(&Evidence::empty(net.var_count()));
        let (tx_a, rx_a) = mpsc::channel();
        let (tx_b, rx_b) = mpsc::channel();
        let now = Instant::now();
        dispatch(
            &shared,
            Job {
                tenant,
                model: "sprinkler".to_string(),
                query: BatchQuery::Marginal,
                priority: Priority::Interactive,
                batch,
                waiters: vec![
                    Waiter {
                        enqueued: now,
                        tx: tx_a,
                    },
                    Waiter {
                        enqueued: now,
                        tx: tx_b,
                    },
                ],
            },
        );
        // Waiter 0 owns lane 0; waiter 1 has no lane and must get the
        // typed mismatch error immediately.
        let (_, first) = rx_a.recv().expect("lane 0 answered");
        assert!(matches!(first, Ok(ServeResponse::Marginal { .. })));
        let (_, second) = rx_b
            .recv_timeout(Duration::from_secs(5))
            .expect("unmatched waiter answered, not hung");
        assert_eq!(
            second,
            Err(ServeError::LaneCountMismatch {
                expected: 2,
                got: 1
            })
        );
    }
}
