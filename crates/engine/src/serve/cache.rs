//! The exact answer cache: an LRU memo of per-lane serving results
//! keyed on `(model, tape version, query, canonical evidence)`.
//!
//! The cache is *exact*, not approximate: a hit requires full equality
//! of the canonical evidence column (every variable's observed state,
//! [`problp_bayes::UNOBSERVED`] where free), so a cached answer is the
//! very payload the engine produced for that key earlier — hits are
//! bit-identical by construction, across all three arithmetics. The
//! 64-bit evidence fingerprint only accelerates hashing; equality never
//! trusts it.
//!
//! Keys carry the tenant's [`ModelVersion`], so answers computed
//! against an old tape can never resolve a request admitted after a
//! [`super::Server::reload`] cut-over: the new admission hashes to a
//! different key. Reload additionally drops the swapped model's entries
//! eagerly (counted as evictions) to free capacity.
//!
//! Only deterministic outcomes are memoized: successful responses and
//! the typed [`ServeError::ImpossibleEvidence`] reject. Transient
//! failures (worker panics, lane-count mismatches) always re-execute.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Mutex, MutexGuard};

use problp_bayes::{BatchQuery, Evidence, EvidenceBatch, VarId, UNOBSERVED};

use super::admission::{LaneResult, ServeError};
use super::pool::ModelVersion;

/// The exact identity of one servable lane. Two requests share a key
/// iff a cached answer for one is, bit for bit, the right answer for
/// the other.
///
/// `Hash` is implemented by hand so only the cheap fields feed the
/// hasher (the evidence column is folded in through `fingerprint`);
/// the derived `PartialEq` still compares the full evidence column, so
/// a fingerprint collision degrades to a bucket collision, never to a
/// wrong answer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) struct CacheKey {
    model: String,
    version: ModelVersion,
    query: BatchQuery,
    fingerprint: u64,
    evidence: Box<[i32]>,
}

impl Hash for CacheKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.model.hash(state);
        self.version.hash(state);
        match self.query {
            BatchQuery::Marginal => 0u8.hash(state),
            BatchQuery::Mpe => 1u8.hash(state),
            BatchQuery::Conditional { query_var } => {
                2u8.hash(state);
                query_var.index().hash(state);
            }
        }
        self.fingerprint.hash(state);
    }
}

/// FNV-1a over the little-endian bytes of the canonical state column —
/// byte-stable across platforms and across the two key constructors.
fn evidence_fingerprint(states: &[i32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for s in states {
        for b in s.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

impl CacheKey {
    fn from_states(
        model: &str,
        version: ModelVersion,
        query: BatchQuery,
        states: Vec<i32>,
    ) -> Self {
        CacheKey {
            model: model.to_string(),
            version,
            query,
            fingerprint: evidence_fingerprint(&states),
            evidence: states.into_boxed_slice(),
        }
    }

    /// The key of a request at admission, before any coalescing: the
    /// sparse [`Evidence`] is canonicalized into a dense state column.
    pub(crate) fn for_request(
        model: &str,
        version: ModelVersion,
        query: BatchQuery,
        evidence: &Evidence,
    ) -> Self {
        let mut states = vec![UNOBSERVED; evidence.len()];
        for (var, state) in evidence.iter() {
            states[var.index()] = state as i32;
        }
        Self::from_states(model, version, query, states)
    }

    /// The key of one lane of a dispatched job, read back out of the
    /// coalesced columnar batch. Produces exactly the column
    /// [`CacheKey::for_request`] would have built from the lane's
    /// original request — the property the key-canonicalization unit
    /// test pins.
    pub(crate) fn for_lane(
        model: &str,
        version: ModelVersion,
        query: BatchQuery,
        batch: &EvidenceBatch,
        lane: usize,
    ) -> Self {
        let states = (0..batch.var_count())
            .map(|v| batch.column(VarId::from_index(v))[lane])
            .collect();
        Self::from_states(model, version, query, states)
    }

    /// Whether this key belongs to `model` (any version).
    fn is_model(&self, model: &str) -> bool {
        self.model == model
    }
}

/// Whether a lane's outcome is a deterministic function of its cache
/// key, and therefore safe to memoize.
pub(crate) fn cacheable<V>(result: &LaneResult<V>) -> bool {
    matches!(result, Ok(_) | Err(ServeError::ImpossibleEvidence))
}

const NIL: usize = usize::MAX;

struct Node<T> {
    key: CacheKey,
    value: T,
    prev: usize,
    next: usize,
}

/// A strict-capacity LRU map: an intrusive doubly-linked recency list
/// threaded through a slab `Vec`, with a [`HashMap`] index — `get` and
/// `insert` are O(1) (amortized), so the hot submit path pays a hash
/// and a couple of pointer swaps under the cache lock.
pub(crate) struct AnswerCache<T> {
    capacity: usize,
    map: HashMap<CacheKey, usize>,
    slab: Vec<Node<T>>,
    free: Vec<usize>,
    /// Most recently used.
    head: usize,
    /// Least recently used — the eviction end.
    tail: usize,
}

impl<T> AnswerCache<T> {
    /// An empty cache holding at most `capacity` entries. Callers gate
    /// on `capacity > 0` (a zero-capacity cache is represented as no
    /// cache at all, so the hot paths skip the lock entirely).
    pub(crate) fn new(capacity: usize) -> Self {
        AnswerCache {
            capacity: capacity.max(1),
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slab[next].prev = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up `key`, marking it most-recently-used on a hit.
    pub(crate) fn get(&mut self, key: &CacheKey) -> Option<&T> {
        let idx = *self.map.get(key)?;
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
        Some(&self.slab[idx].value)
    }

    /// Inserts (or refreshes) `key`, evicting from the LRU end if over
    /// capacity. Returns the number of entries evicted (0 or 1).
    pub(crate) fn insert(&mut self, key: CacheKey, value: T) -> u64 {
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = value;
            if self.head != idx {
                self.unlink(idx);
                self.push_front(idx);
            }
            return 0;
        }
        let node = Node {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slab[idx] = node;
                idx
            }
            None => {
                self.slab.push(node);
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        if self.map.len() > self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.slab[victim].key);
            self.free.push(victim);
            1
        } else {
            0
        }
    }

    /// Drops every entry belonging to `model`, any version — the
    /// reload invalidation hook. Returns the number dropped.
    pub(crate) fn invalidate_model(&mut self, model: &str) -> u64 {
        let victims: Vec<usize> = self
            .map
            .iter()
            .filter(|(k, _)| k.is_model(model))
            .map(|(_, &idx)| idx)
            .collect();
        for idx in &victims {
            self.unlink(*idx);
            self.map.remove(&self.slab[*idx].key);
            self.free.push(*idx);
        }
        victims.len() as u64
    }
}

/// Locks the cache, recovering from poisoning: like the queue, cache
/// state is plain data with no invariants spanning a panic point, and
/// serving must outlive a panicked worker.
pub(crate) fn lock_cache<T>(cache: &Mutex<AnswerCache<T>>) -> MutexGuard<'_, AnswerCache<T>> {
    cache
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::super::pool::tests_support::{marginal, two_model_pool};
    use super::super::{
        lane_answer_eq, Priority, ServeConfig, ServeError, ServeRequest, ServeResponse, Server,
    };
    use super::*;
    use std::time::Duration;

    fn key(model: &str, version: ModelVersion, states: &[i32]) -> CacheKey {
        CacheKey::from_states(model, version, BatchQuery::Marginal, states.to_vec())
    }

    #[test]
    fn key_canonicalization_matches_between_constructors() {
        let mut ev = Evidence::empty(4);
        ev.observe(VarId::from_index(2), 1);
        let from_request = CacheKey::for_request("m", 3, BatchQuery::Marginal, &ev);
        let mut batch = EvidenceBatch::new(4);
        batch.push(&Evidence::empty(4));
        batch.push(&ev);
        let from_lane = CacheKey::for_lane("m", 3, BatchQuery::Marginal, &batch, 1);
        assert_eq!(from_request, from_lane);
        assert_eq!(from_request.fingerprint, from_lane.fingerprint);
        // And the unobserved lane is a different key with a different
        // canonical column.
        let empty_lane = CacheKey::for_lane("m", 3, BatchQuery::Marginal, &batch, 0);
        assert_ne!(from_request, empty_lane);
        assert_eq!(&*empty_lane.evidence, &[UNOBSERVED; 4]);
    }

    #[test]
    fn keys_separate_models_versions_and_queries() {
        let ev = Evidence::empty(4);
        let base = CacheKey::for_request("m", 1, BatchQuery::Marginal, &ev);
        assert_ne!(
            base,
            CacheKey::for_request("n", 1, BatchQuery::Marginal, &ev)
        );
        assert_ne!(
            base,
            CacheKey::for_request("m", 2, BatchQuery::Marginal, &ev)
        );
        assert_ne!(base, CacheKey::for_request("m", 1, BatchQuery::Mpe, &ev));
        let cond = |v: usize| BatchQuery::Conditional {
            query_var: VarId::from_index(v),
        };
        // Conditional keys distinguish the query variable even though
        // the evidence column is identical.
        assert_ne!(
            CacheKey::for_request("m", 1, cond(0), &ev),
            CacheKey::for_request("m", 1, cond(1), &ev)
        );
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let mut c: AnswerCache<u32> = AnswerCache::new(2);
        assert_eq!(c.insert(key("m", 1, &[0]), 10), 0);
        assert_eq!(c.insert(key("m", 1, &[1]), 11), 0);
        // Touch [0] so [1] becomes the LRU victim.
        assert_eq!(c.get(&key("m", 1, &[0])), Some(&10));
        assert_eq!(c.insert(key("m", 1, &[2]), 12), 1);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&key("m", 1, &[1])), None);
        assert_eq!(c.get(&key("m", 1, &[0])), Some(&10));
        assert_eq!(c.get(&key("m", 1, &[2])), Some(&12));
        // Refreshing an existing key is not an eviction, and the slab
        // slot freed above is reused rather than growing the slab.
        assert_eq!(c.insert(key("m", 1, &[0]), 20), 0);
        assert_eq!(c.get(&key("m", 1, &[0])), Some(&20));
        assert_eq!(c.slab.len(), 3);
    }

    #[test]
    fn invalidate_model_drops_only_that_model() {
        let mut c: AnswerCache<u32> = AnswerCache::new(8);
        c.insert(key("hot", 1, &[0]), 1);
        c.insert(key("hot", 2, &[0]), 2);
        c.insert(key("cold", 1, &[0]), 3);
        // Both versions of the swapped model go; the bystander stays.
        assert_eq!(c.invalidate_model("hot"), 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&key("cold", 1, &[0])), Some(&3));
        assert_eq!(c.get(&key("hot", 1, &[0])), None);
        // The freed slots are reusable.
        c.insert(key("hot", 3, &[0]), 4);
        assert_eq!(c.get(&key("hot", 3, &[0])), Some(&4));
        assert_eq!(c.slab.len(), 3);
    }

    #[test]
    fn cache_hits_are_bit_identical_and_counted() {
        let server = Server::start(
            two_model_pool(),
            ServeConfig {
                max_batch: 4,
                max_wait: Duration::from_micros(100),
                workers: 1,
                cache_capacity: 64,
                ..ServeConfig::default()
            },
        );
        let req = marginal("sprinkler", 4, Priority::Interactive);
        let cold = server.submit(req.clone()).unwrap().wait();
        assert!(matches!(cold, Ok(ServeResponse::Marginal { .. })));
        // The dispatcher fills the cache before resolving the ticket,
        // so the resubmit below deterministically hits.
        let warm = server.submit(req.clone()).unwrap().wait();
        assert!(lane_answer_eq(&cold, &warm), "{cold:?} vs {warm:?}");
        let stats = server.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        // The hit never entered the queue: one lane admitted in total.
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.dispatches, 1);
        server.shutdown();
    }

    #[test]
    fn impossible_evidence_is_memoized_but_panics_are_not() {
        // ImpossibleEvidence is a deterministic function of the key, so
        // the second submission must hit.
        let net = problp_bayes::networks::sprinkler();
        let server = Server::start(
            two_model_pool(),
            ServeConfig {
                max_batch: 1,
                max_wait: Duration::from_micros(50),
                workers: 1,
                cache_capacity: 16,
                ..ServeConfig::default()
            },
        );
        let mut impossible = Evidence::empty(net.var_count());
        impossible.observe(net.find("Sprinkler").unwrap(), 0);
        impossible.observe(net.find("Rain").unwrap(), 0);
        impossible.observe(net.find("WetGrass").unwrap(), 1);
        let req = ServeRequest {
            model: "sprinkler".to_string(),
            evidence: impossible,
            query: BatchQuery::Conditional {
                query_var: net.find("Cloudy").unwrap(),
            },
            priority: Priority::Interactive,
        };
        let cold = server.submit(req.clone()).unwrap().wait();
        assert_eq!(cold, Err(ServeError::ImpossibleEvidence));
        let warm = server.submit(req).unwrap().wait();
        assert_eq!(warm, Err(ServeError::ImpossibleEvidence));
        assert_eq!(server.stats().cache_hits, 1);
        server.shutdown();
        // And the cacheable() gate itself: transient errors are not
        // deterministic outcomes of the key.
        assert!(cacheable::<f64>(&Err(ServeError::ImpossibleEvidence)));
        assert!(!cacheable::<f64>(&Err(ServeError::Disconnected)));
        assert!(!cacheable::<f64>(&Err(ServeError::LaneCountMismatch {
            expected: 2,
            got: 1
        })));
    }

    #[test]
    fn cache_off_by_default_counts_nothing() {
        let server = Server::start(two_model_pool(), ServeConfig::default());
        let req = marginal("asia", 8, Priority::Interactive);
        let a = server.submit(req.clone()).unwrap().wait();
        let b = server.submit(req).unwrap().wait();
        assert!(lane_answer_eq(&a, &b));
        let stats = server.stats();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_misses, 0);
        assert_eq!(stats.cache_evictions, 0);
        assert_eq!(stats.admitted, 2);
        server.shutdown();
    }
}
