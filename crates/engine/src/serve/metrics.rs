//! The serving layer's telemetry: every metric handle the hot paths
//! touch, precreated at server start, plus [`ServerStats`] — the
//! programmatic point-in-time snapshot `/statz` and tests read instead
//! of parsing rendered output.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use problp_bayes::BatchQuery;
use problp_num::Flags;
use problp_telemetry::{
    default_latency_buckets_us, default_size_buckets, metric_names, Counter, Gauge, Histogram,
    MetricsRegistry,
};

use super::admission::Priority;
use super::pool::ModelVersion;
use crate::kernels::KernelKind;

/// The query kinds as stable metric-label names (`query` label of the
/// sojourn and evaluate histograms).
pub(crate) fn query_kind_name(query: BatchQuery) -> &'static str {
    match query {
        BatchQuery::Marginal => "marginal",
        BatchQuery::Mpe => "mpe",
        BatchQuery::Conditional { .. } => "conditional",
    }
}

/// Index of a query kind into the precreated per-kind handle arrays.
pub(crate) fn query_kind_idx(query: BatchQuery) -> usize {
    match query {
        BatchQuery::Marginal => 0,
        BatchQuery::Mpe => 1,
        BatchQuery::Conditional { .. } => 2,
    }
}

/// The priority classes as stable metric-label names.
pub(crate) fn priority_name(priority: Priority) -> &'static str {
    match priority {
        Priority::Interactive => "interactive",
        Priority::Batch => "batch",
    }
}

const QUERY_KINDS: [BatchQuery; 3] = [
    BatchQuery::Marginal,
    BatchQuery::Mpe,
    BatchQuery::Conditional {
        // The query_var is irrelevant here: these are label templates,
        // and all conditional queries share one label.
        query_var: problp_bayes::VarId::from_index(0),
    },
];
const PRIORITIES: [Priority; 2] = [Priority::Interactive, Priority::Batch];

/// Every metric handle the serving hot paths touch, precreated at
/// server start so submit/dispatch never pay the registry's
/// registration lock — each update is a bare atomic op. The catalog
/// (names, labels, semantics) is documented in
/// [`problp_telemetry::metric_names`].
pub(crate) struct ServeMetrics {
    pub(crate) registry: Arc<MetricsRegistry>,
    pub(crate) requests: Counter,
    pub(crate) admitted: Counter,
    pub(crate) rejected_unknown_model: Counter,
    pub(crate) rejected_bad_shape: Counter,
    pub(crate) rejected_quota: Counter,
    pub(crate) rejected_shutdown: Counter,
    pub(crate) queue_depth: Gauge,
    pub(crate) group_lanes: Histogram,
    pub(crate) effective_wait_us: Histogram,
    pub(crate) aging_promotions: Counter,
    pub(crate) dispatches: Counter,
    /// Exact answer-cache hits (ticket resolved at admission).
    pub(crate) cache_hits: Counter,
    /// Cache lookups that fell through to the queue.
    pub(crate) cache_misses: Counter,
    /// LRU evictions plus reload invalidations.
    pub(crate) cache_evictions: Counter,
    /// `[query kind][priority]` sojourn histograms.
    pub(crate) sojourn_us: [[Histogram; 2]; 3],
    /// Per-query-kind engine evaluate wall time.
    pub(crate) evaluate_us: [Histogram; 3],
    pub(crate) tape_instrs: Counter,
    pub(crate) fused_instrs: Counter,
    /// Dispatched groups by evaluator core: scalar, simd, fused
    /// ([`crate::KernelKind::ALL`] order).
    pub(crate) kernel_dispatches: [Counter; 3],
    /// overflow, underflow, inexact, invalid.
    pub(crate) flag_raises: [Counter; 4],
    pub(crate) live_workers: Gauge,
    /// Per-model occupancy gauges, created on a tenant's first lane
    /// (only when quotas are on — mirrors the quota books).
    pub(crate) tenant_lanes: Mutex<HashMap<String, Gauge>>,
    /// Per-model live-version gauges, created at server start and
    /// updated on reload.
    pub(crate) model_versions: Mutex<HashMap<String, Gauge>>,
}

impl ServeMetrics {
    pub(crate) fn new(registry: Arc<MetricsRegistry>) -> Self {
        let sojourn_us = QUERY_KINDS.map(|q| {
            PRIORITIES.map(|p| {
                registry.histogram_with(
                    metric_names::SERVE_SOJOURN_US,
                    &[
                        ("query", query_kind_name(q)),
                        ("priority", priority_name(p)),
                    ],
                    "enqueue-to-completion sojourn per lane, microseconds",
                    default_latency_buckets_us(),
                )
            })
        });
        let evaluate_us = QUERY_KINDS.map(|q| {
            registry.histogram_with(
                metric_names::ENGINE_EVALUATE_US,
                &[("query", query_kind_name(q))],
                "engine evaluate wall time per dispatched group, microseconds",
                default_latency_buckets_us(),
            )
        });
        let flag_raises = ["overflow", "underflow", "inexact", "invalid"].map(|flag| {
            registry.counter_with(
                metric_names::ENGINE_FLAG_RAISES_TOTAL,
                &[("flag", flag)],
                "dispatched groups whose evaluation raised the sticky flag",
            )
        });
        ServeMetrics {
            requests: registry.counter(
                metric_names::SERVE_REQUESTS_TOTAL,
                "lanes submitted, admitted or not",
            ),
            admitted: registry.counter(
                metric_names::SERVE_ADMITTED_TOTAL,
                "lanes that passed admission and were queued",
            ),
            rejected_unknown_model: registry.counter_with(
                metric_names::SERVE_REJECTED_TOTAL,
                &[("kind", "unknown_model")],
                "typed admission rejects by ServeError kind",
            ),
            rejected_bad_shape: registry.counter_with(
                metric_names::SERVE_REJECTED_TOTAL,
                &[("kind", "bad_shape")],
                "typed admission rejects by ServeError kind",
            ),
            rejected_quota: registry.counter_with(
                metric_names::SERVE_REJECTED_TOTAL,
                &[("kind", "quota")],
                "typed admission rejects by ServeError kind",
            ),
            rejected_shutdown: registry.counter_with(
                metric_names::SERVE_REJECTED_TOTAL,
                &[("kind", "shutdown")],
                "typed admission rejects by ServeError kind",
            ),
            queue_depth: registry.gauge(
                metric_names::SERVE_QUEUE_DEPTH,
                "coalescing groups currently waiting for dispatch",
            ),
            group_lanes: registry.histogram(
                metric_names::SERVE_GROUP_LANES,
                "lanes per dispatched group",
                default_size_buckets(),
            ),
            effective_wait_us: registry.histogram(
                metric_names::SERVE_EFFECTIVE_WAIT_US,
                "adaptive coalescing wait applied per dispatched group, microseconds",
                default_latency_buckets_us(),
            ),
            aging_promotions: registry.counter(
                metric_names::SERVE_AGING_PROMOTIONS_TOTAL,
                "batch groups dispatched at the interactive rank via priority aging",
            ),
            dispatches: registry.counter(
                metric_names::SERVE_DISPATCHES_TOTAL,
                "dispatched groups (one engine evaluate each)",
            ),
            cache_hits: registry.counter(
                metric_names::SERVE_CACHE_HITS_TOTAL,
                "answer-cache hits (lanes resolved at admission, bit-identical)",
            ),
            cache_misses: registry.counter(
                metric_names::SERVE_CACHE_MISSES_TOTAL,
                "answer-cache lookups that fell through to the queue",
            ),
            cache_evictions: registry.counter(
                metric_names::SERVE_CACHE_EVICTIONS_TOTAL,
                "answer-cache entries dropped (LRU pressure or model reload)",
            ),
            sojourn_us,
            evaluate_us,
            tape_instrs: registry.counter(
                metric_names::ENGINE_TAPE_INSTRS_TOTAL,
                "tape instructions executed (instructions x lanes per group)",
            ),
            fused_instrs: registry.counter(
                metric_names::ENGINE_FUSED_INSTRS_TOTAL,
                "fused superinstructions executed (fused instructions x lanes per group)",
            ),
            kernel_dispatches: KernelKind::ALL.map(|k| {
                registry.counter_with(
                    metric_names::ENGINE_KERNEL_DISPATCHES_TOTAL,
                    &[("kernel", k.name())],
                    "dispatched groups by evaluator core",
                )
            }),
            flag_raises,
            live_workers: registry.gauge(
                "problp_serve_live_workers",
                "dispatcher worker threads currently running",
            ),
            tenant_lanes: Mutex::new(HashMap::new()),
            model_versions: Mutex::new(HashMap::new()),
            registry,
        }
    }

    /// The per-model occupancy gauge, created on first use.
    pub(crate) fn tenant_gauge(&self, model: &str) -> Gauge {
        let mut map = self
            .tenant_lanes
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        match map.get(model) {
            Some(g) => g.clone(),
            None => {
                let g = self.registry.gauge_with(
                    metric_names::SERVE_TENANT_LANES,
                    &[("model", model)],
                    "lanes queued + in flight per tenant (quota occupancy)",
                );
                map.insert(model.to_string(), g.clone());
                g
            }
        }
    }

    /// The per-model live-version gauge, created on first use.
    pub(crate) fn model_version_gauge(&self, model: &str) -> Gauge {
        let mut map = self
            .model_versions
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        match map.get(model) {
            Some(g) => g.clone(),
            None => {
                let g = self.registry.gauge_with(
                    metric_names::POOL_MODEL_VERSION,
                    &[("model", model)],
                    "the live tape version serving new admissions per model",
                );
                map.insert(model.to_string(), g.clone());
                g
            }
        }
    }

    /// Folds a dispatched group's batch-scope sticky flags into the
    /// per-flag raise counters.
    pub(crate) fn note_flags(&self, flags: Flags) {
        for (raised, counter) in [
            flags.overflow,
            flags.underflow,
            flags.inexact,
            flags.invalid,
        ]
        .into_iter()
        .zip(&self.flag_raises)
        {
            if raised {
                counter.inc();
            }
        }
    }
}

/// A point-in-time snapshot of a [`super::Server`]'s own counters
/// ([`super::Server::stats`]): what tests and the `/healthz`/`/statz`
/// sidecar read instead of parsing `serve-sim` stdout.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServerStats {
    /// Lanes submitted, admitted or not.
    pub requests: u64,
    /// Lanes that passed admission and were queued.
    pub admitted: u64,
    /// Rejects with [`super::ServeError::UnknownModel`].
    pub rejected_unknown_model: u64,
    /// Rejects with a shape mismatch
    /// ([`crate::EngineError::BatchLengthMismatch`]).
    pub rejected_bad_shape: u64,
    /// Rejects with [`super::ServeError::QuotaExceeded`].
    pub rejected_quota: u64,
    /// Rejects with [`super::ServeError::ShutDown`].
    pub rejected_shutdown: u64,
    /// Dispatched groups (one engine evaluate each).
    pub dispatches: u64,
    /// Answer-cache hits: lanes resolved at admission with a
    /// bit-identical memoized payload, never entering the queue.
    pub cache_hits: u64,
    /// Answer-cache lookups that fell through to the queue (always `0`
    /// with the cache disabled).
    pub cache_misses: u64,
    /// Answer-cache entries dropped — LRU capacity pressure plus the
    /// per-model invalidation of [`super::Server::reload`].
    pub cache_evictions: u64,
    /// Coalescing groups waiting right now.
    pub queue_depth: i64,
    /// The deepest the queue has ever been.
    pub queue_depth_high_water: i64,
    /// Lanes queued + in flight per model, sorted by model id (the
    /// quota denominator; empty when quotas are off — no books are kept
    /// then).
    pub tenant_lanes: Vec<(String, usize)>,
    /// Dispatcher worker threads currently alive.
    pub live_workers: i64,
    /// The hosted model ids, sorted.
    pub models: Vec<String>,
    /// The live tape version per hosted model, sorted by model id —
    /// `1` until the first [`super::Server::reload`] /
    /// [`super::CircuitPool::reload`] bumps it.
    pub model_versions: Vec<(String, ModelVersion)>,
}
