//! [`CircuitPool`]: compiled circuits keyed by model id
//! (model-per-tenant), each hosted at a live [`ModelVersion`].
//! Registering or reloading a model compiles both serving tapes and
//! passes them through the static-verifier admission gate; reloads
//! publish the new tenant atomically, while work already admitted keeps
//! the tenant handle (and tape version) it was admitted under.

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use problp_ac::{AcGraph, Semiring};
use problp_bayes::{BatchQuery, EvidenceBatch};
use problp_num::Arith;

use crate::engine::Engine;
use crate::error::{panic_message, EngineError};
use crate::kernels::{KernelKind, KernelSet};
use crate::query::{ConditionalLaneStatus, QueryBatchResult};

use super::admission::{LaneResult, ServeError, ServeRequest, ServeResponse};

/// The live version of a hosted model: `1` at first registration,
/// bumped by every [`CircuitPool::reload`] (and re-register) of the
/// same id. Versions gate cache reuse — an answer cached under one
/// version can never serve a request admitted under another.
pub type ModelVersion = u64;

/// One hosted model: the engines serving its three query kinds, frozen
/// at one tape version. Queued and in-flight work holds an `Arc` to the
/// tenant it was admitted under, so a reload never changes the tape a
/// lane is evaluated on.
pub(crate) struct Tenant<A: Arith> {
    /// `SumProduct` compact tape: marginal and conditional lanes.
    pub(crate) sum: Engine<A>,
    /// `MaxProduct` full-values tape: MPE decoding.
    pub(crate) mpe: Engine<A>,
    /// Variables of the model (admission-time shape check).
    pub(crate) var_count: usize,
    /// The tenant's tape version (see [`ModelVersion`]).
    pub(crate) version: ModelVersion,
}

/// Hosts many compiled circuits keyed by model id (model-per-tenant),
/// all bound to one arithmetic context type.
///
/// Registering a model compiles both tapes it can be served from. The
/// hosted set is fixed at serving time, but a hosted model can be
/// **hot-swapped** in place with [`CircuitPool::reload`]: the new tape
/// pair is compiled, verified and published atomically at the next
/// [`ModelVersion`], cutting new admissions over without draining the
/// work already queued against the previous version.
pub struct CircuitPool<A: Arith> {
    ctx: A,
    engine_threads: usize,
    kernel: KernelKind,
    tenants: RwLock<HashMap<String, Arc<Tenant<A>>>>,
}

impl<A> CircuitPool<A>
where
    A: KernelSet + Clone + Send + Sync,
    A::Value: Clone + Send + Sync,
{
    /// Creates an empty pool evaluating in `ctx`'s number system.
    pub fn new(ctx: A) -> Self {
        CircuitPool {
            ctx,
            engine_threads: 1,
            kernel: KernelKind::Scalar,
            tenants: RwLock::new(HashMap::new()),
        }
    }

    /// Sets the thread cap of every engine registered *after* this call
    /// (`0` = all cores). The default of 1 keeps engine evaluations
    /// single-threaded so the dispatcher shards stay the unit of
    /// parallelism.
    pub fn with_engine_threads(mut self, threads: usize) -> Self {
        self.engine_threads = threads;
        self
    }

    /// Selects the evaluator core ([`crate::KernelKind`]) of every engine
    /// registered *after* this call. Coalesced answers stay pinned
    /// bit-identical to [`CircuitPool::serve_one`] under every kernel —
    /// both paths evaluate through the same tenant engines — and the
    /// `tests/serve.rs` proptest sweep exercises the whole matrix.
    pub fn with_kernel(mut self, kernel: KernelKind) -> Self {
        self.kernel = kernel;
        self
    }

    /// The evaluator core newly registered engines will run.
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// The arithmetic context every hosted engine evaluates in — the
    /// hook result renderers (the HTTP gateway) use to project values
    /// into `f64` via [`problp_num::Arith::to_f64`].
    pub fn context(&self) -> &A {
        &self.ctx
    }

    /// Compiles both serving engines for `ac` under the pool's context,
    /// threads and kernel — the shared build step of [`register`] and
    /// [`reload`].
    ///
    /// [`register`]: CircuitPool::register
    /// [`reload`]: CircuitPool::reload
    fn compile_engines(&self, ac: &AcGraph) -> Result<(Engine<A>, Engine<A>), EngineError> {
        let sum = Engine::from_graph(ac, Semiring::SumProduct, self.ctx.clone())?
            .with_threads(self.engine_threads)
            .with_kernel(self.kernel);
        let mpe = Engine::from_graph_full(ac, Semiring::MaxProduct, self.ctx.clone())?
            .with_threads(self.engine_threads)
            .with_kernel(self.kernel);
        Ok((sum, mpe))
    }

    /// Compiles `ac` under both serving semirings and hosts it as
    /// `model`. Re-registering an id replaces the previous circuit and
    /// bumps its [`ModelVersion`].
    ///
    /// Admission runs the static tape verifier ([`crate::Tape::verify`],
    /// and [`crate::Tape::verify_fused`] under the fused kernel) over
    /// both engines in **every** build — release included, where
    /// compilation itself skips the debug-only auto-check — so a tape
    /// that lost its dataflow guarantees anywhere between compilation
    /// and serving never joins the pool.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Circuit`] if the circuit is invalid, or
    /// [`EngineError::Verify`] if a compiled tape fails verification.
    pub fn register(&mut self, model: &str, ac: &AcGraph) -> Result<(), EngineError> {
        let (sum, mpe) = self.compile_engines(ac)?;
        self.register_engines(model, sum, mpe)
    }

    /// Hosts a pair of pre-built engines as `model` after passing them
    /// through the verification gate; [`CircuitPool::register`] is the
    /// compile-and-admit convenience on top of this. Taking engines
    /// directly is what lets verifier tests (and future tape
    /// deserialization paths) exercise the typed rejection: a tape
    /// corrupted after compilation is refused here with
    /// [`EngineError::Verify`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Verify`] if either engine's tape — or its
    /// fused stream, when one is attached — fails static verification.
    pub fn register_engines(
        &mut self,
        model: &str,
        sum: Engine<A>,
        mpe: Engine<A>,
    ) -> Result<(), EngineError> {
        verify_engines(&sum, &mpe)?;
        let var_count = sum.tape().var_count();
        let mut tenants = self.write_tenants();
        let version = tenants.get(model).map_or(1, |t| t.version + 1);
        tenants.insert(
            model.to_string(),
            Arc::new(Tenant {
                sum,
                mpe,
                var_count,
                version,
            }),
        );
        Ok(())
    }

    /// Hot-swaps a hosted model: recompiles `ac` under both serving
    /// semirings, passes the new tapes through the same verification
    /// gate as [`CircuitPool::register`], and atomically publishes them
    /// at the next [`ModelVersion`]. Returns the new version.
    ///
    /// The cut-over is admission-time only: requests admitted after the
    /// swap are served by the new tapes, while queued and in-flight
    /// work keeps the tenant it was admitted under — nothing drains and
    /// no ticket strands. Compilation and verification happen *outside*
    /// the pool's lock, so serving never stalls behind a reload.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] if `model` is not hosted
    /// (reload replaces, it does not introduce), or the underlying
    /// [`EngineError`] (as [`ServeError::Engine`]) if the circuit is
    /// invalid or a recompiled tape fails verification — the previous
    /// version keeps serving in every error case.
    pub fn reload(&self, model: &str, ac: &AcGraph) -> Result<ModelVersion, ServeError> {
        if !self.read_tenants().contains_key(model) {
            return Err(ServeError::UnknownModel {
                model: model.to_string(),
            });
        }
        let (sum, mpe) = self.compile_engines(ac)?;
        verify_engines(&sum, &mpe)?;
        let var_count = sum.tape().var_count();
        let mut tenants = self.write_tenants();
        // Re-read under the write lock: concurrent reloads serialize
        // here and each one publishes a strictly newer version.
        let version = tenants.get(model).map_or(1, |t| t.version + 1);
        tenants.insert(
            model.to_string(),
            Arc::new(Tenant {
                sum,
                mpe,
                var_count,
                version,
            }),
        );
        Ok(version)
    }

    /// The hosted model ids, sorted.
    pub fn models(&self) -> Vec<String> {
        let mut names: Vec<String> = self.read_tenants().keys().cloned().collect();
        names.sort();
        names
    }

    /// The hosted models with their live versions, sorted by model id.
    pub fn model_versions(&self) -> Vec<(String, ModelVersion)> {
        let mut versions: Vec<(String, ModelVersion)> = self
            .read_tenants()
            .iter()
            .map(|(name, t)| (name.clone(), t.version))
            .collect();
        versions.sort();
        versions
    }

    /// Number of hosted models.
    pub fn len(&self) -> usize {
        self.read_tenants().len()
    }

    /// `true` when no model is hosted.
    pub fn is_empty(&self) -> bool {
        self.read_tenants().is_empty()
    }

    /// Looks up a tenant's current version, as a [`ServeError`] on
    /// miss. The returned handle pins the tenant's tape version for as
    /// long as the caller holds it — this is what makes reload cut-over
    /// admission-time only.
    pub(crate) fn tenant(&self, model: &str) -> Result<Arc<Tenant<A>>, ServeError> {
        self.read_tenants()
            .get(model)
            .cloned()
            .ok_or_else(|| ServeError::UnknownModel {
                model: model.to_string(),
            })
    }

    /// Admission-time request validation: the model must exist and the
    /// evidence must range over its variables. Returns the tenant the
    /// request was admitted to, so admission and dispatch agree on the
    /// tape version even across a concurrent reload.
    pub(crate) fn admit(&self, req: &ServeRequest) -> Result<Arc<Tenant<A>>, ServeError> {
        let tenant = self.tenant(&req.model)?;
        if req.evidence.len() != tenant.var_count {
            return Err(ServeError::Engine(EngineError::BatchLengthMismatch {
                batch: req.evidence.len(),
                circuit: tenant.var_count,
            }));
        }
        Ok(tenant)
    }

    /// Serves one request directly, as a single-lane batch — the
    /// per-request reference path the coalesced answers are pinned
    /// bit-identical to, and the scalar baseline of `serve-sim`. This
    /// path never consults the answer cache: it is the uncached
    /// reference the cache's hits are compared against.
    pub fn serve_one(&self, req: &ServeRequest) -> LaneResult<A::Value> {
        let tenant = self.admit(req)?;
        let mut batch = EvidenceBatch::new(tenant.var_count);
        batch.push(&req.evidence);
        // Panic-proof like the dispatcher path: any panic inside the
        // evaluation (engine fast paths included) becomes a typed
        // WorkerPanic instead of unwinding the caller's thread.
        let mut results = std::panic::catch_unwind(AssertUnwindSafe(|| {
            self.evaluate_group(&tenant, req.query, &batch)
        }))
        .map_err(|payload| {
            ServeError::Engine(EngineError::WorkerPanic {
                message: panic_message(payload),
            })
        })?;
        // One lane in must mean one result out; if an engine ever breaks
        // that, surface a typed internal error instead of panicking.
        match (results.len(), results.pop()) {
            (1, Some(result)) => result,
            (got, _) => Err(ServeError::LaneCountMismatch { expected: 1, got }),
        }
    }

    /// Evaluates one coalesced `(model, query)` group and splits the
    /// result back into per-lane answers. A batch-level engine error is
    /// replicated to every lane; conditional lanes with impossible
    /// evidence fail individually.
    pub(crate) fn evaluate_group(
        &self,
        tenant: &Tenant<A>,
        query: BatchQuery,
        batch: &EvidenceBatch,
    ) -> Vec<LaneResult<A::Value>> {
        let engine = match query {
            BatchQuery::Mpe => &tenant.mpe,
            _ => &tenant.sum,
        };
        match engine.evaluate_query(batch, query) {
            Err(e) => vec![Err(ServeError::Engine(e)); batch.lanes()],
            Ok(QueryBatchResult::Marginal(r)) => {
                let flags = r.flags;
                r.values
                    .into_iter()
                    .map(|value| Ok(ServeResponse::Marginal { value, flags }))
                    .collect()
            }
            Ok(QueryBatchResult::Mpe(r)) => {
                let flags = r.flags;
                r.assignments
                    .into_iter()
                    .zip(r.values)
                    .map(|(assignment, value)| {
                        Ok(ServeResponse::Mpe {
                            assignment,
                            value,
                            flags,
                        })
                    })
                    .collect()
            }
            Ok(QueryBatchResult::Conditional(r)) => {
                let flags = r.flags;
                r.posteriors
                    .into_iter()
                    .zip(r.predictions)
                    .zip(r.lane_status)
                    .map(|((posteriors, prediction), status)| match status {
                        ConditionalLaneStatus::Ok => Ok(ServeResponse::Conditional {
                            posteriors,
                            prediction,
                            flags,
                        }),
                        ConditionalLaneStatus::ImpossibleEvidence => {
                            Err(ServeError::ImpossibleEvidence)
                        }
                    })
                    .collect()
            }
        }
    }
}

impl<A: Arith> CircuitPool<A> {
    /// Read-locks the tenant map, recovering from poisoning: the map is
    /// plain data (a publish is one atomic insert), and serving must
    /// outlive a panicked reload.
    fn read_tenants(&self) -> RwLockReadGuard<'_, HashMap<String, Arc<Tenant<A>>>> {
        self.tenants
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Write-locks the tenant map (see [`CircuitPool::read_tenants`]).
    fn write_tenants(&self) -> RwLockWriteGuard<'_, HashMap<String, Arc<Tenant<A>>>> {
        self.tenants
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// The verification gate both registration paths share: every tape (and
/// attached fused stream) must pass static verification before the
/// engines join the pool.
fn verify_engines<A>(sum: &Engine<A>, mpe: &Engine<A>) -> Result<(), EngineError>
where
    A: KernelSet + Clone + Send + Sync,
    A::Value: Clone + Send + Sync,
{
    for engine in [sum, mpe] {
        engine.tape().verify()?;
        if let Some(fused) = engine.fused_tape() {
            engine.tape().verify_fused(fused)?;
        }
    }
    Ok(())
}

/// Shared fixtures of the serve test modules.
#[cfg(test)]
pub(crate) mod tests_support {
    use super::super::admission::{Priority, ServeRequest};
    use super::CircuitPool;
    use problp_ac::compile;
    use problp_bayes::{networks, BatchQuery, Evidence};
    use problp_num::F64Arith;

    /// A pool hosting the sprinkler and asia networks — the standard
    /// two-tenant fixture.
    pub(crate) fn two_model_pool() -> CircuitPool<F64Arith> {
        let mut pool = CircuitPool::new(F64Arith::new());
        pool.register("sprinkler", &compile(&networks::sprinkler()).unwrap())
            .unwrap();
        pool.register("asia", &compile(&networks::asia()).unwrap())
            .unwrap();
        pool
    }

    /// An empty-evidence marginal request against `model`.
    pub(crate) fn marginal(model: &str, vars: usize, priority: Priority) -> ServeRequest {
        ServeRequest {
            model: model.to_string(),
            evidence: Evidence::empty(vars),
            query: BatchQuery::Marginal,
            priority,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::two_model_pool;
    use super::*;
    use problp_ac::compile;
    use problp_bayes::networks;

    #[test]
    fn pool_hosts_models_by_id() {
        let pool = two_model_pool();
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.models(), vec!["asia", "sprinkler"]);
        assert!(!pool.is_empty());
        assert_eq!(
            pool.model_versions(),
            vec![("asia".to_string(), 1), ("sprinkler".to_string(), 1)]
        );
    }

    #[test]
    fn reload_bumps_the_version_and_keeps_admitted_handles() {
        let pool = two_model_pool();
        let before = pool.tenant("sprinkler").unwrap();
        assert_eq!(before.version, 1);
        let ac = compile(&networks::sprinkler()).unwrap();
        assert_eq!(pool.reload("sprinkler", &ac).unwrap(), 2);
        assert_eq!(pool.reload("sprinkler", &ac).unwrap(), 3);
        // The handle taken before the reloads still pins version 1: work
        // admitted against it is never re-routed to a newer tape.
        assert_eq!(before.version, 1);
        let after = pool.tenant("sprinkler").unwrap();
        assert_eq!(after.version, 3);
        assert_eq!(
            pool.model_versions(),
            vec![("asia".to_string(), 1), ("sprinkler".to_string(), 3)]
        );
    }

    #[test]
    fn reload_of_an_unhosted_model_is_rejected() {
        let pool = two_model_pool();
        let ac = compile(&networks::sprinkler()).unwrap();
        assert!(matches!(
            pool.reload("nonesuch", &ac),
            Err(ServeError::UnknownModel { .. })
        ));
    }

    #[test]
    fn reregister_bumps_the_version_too() {
        let mut pool = two_model_pool();
        let ac = compile(&networks::sprinkler()).unwrap();
        pool.register("sprinkler", &ac).unwrap();
        assert_eq!(pool.tenant("sprinkler").unwrap().version, 2);
    }
}
