//! The batched, multi-threaded tape evaluator.
//!
//! # Lane sharding and the SoA register file
//!
//! [`Engine::evaluate_batch`] processes N evidence instances ("lanes")
//! per tape sweep. Lanes are split into contiguous shards, one per worker
//! thread (`std::thread::scope`, no dependencies); each worker owns a
//! structure-of-arrays register file laid out `[register][lane]`:
//!
//! ```text
//! regs: | r0 lane0 .. r0 laneB | r1 lane0 .. r1 laneB | ...
//! ```
//!
//! so every instruction becomes a tight loop over one destination row and
//! up to two source rows — contiguous streams the compiler can vectorize
//! and the prefetcher can follow. Workers further tile their shard into
//! blocks of [`Engine::chunk`] lanes so the whole register file stays
//! cache-resident regardless of batch size. Parameter constants are
//! converted via [`Arith::from_f64`] once at engine construction and
//! broadcast into their pinned rows once per shard.
//!
//! Flag capture comes in two grades: [`Engine::evaluate_batch`] returns
//! the sticky [`Flags`] aggregated over the whole batch (what
//! `measure_errors` needs), while [`Engine::evaluate_batch_flagged`]
//! re-runs lane-major with a fresh context per lane and reports
//! per-lane flags — the input the fixed/float range analyses need to
//! pinpoint which instance violated a format's range.

use problp_ac::{AcGraph, Semiring};
use problp_bayes::{Evidence, EvidenceBatch, VarId};
use problp_num::{Arith, Flags};

use crate::error::{panic_message, EngineError};
use crate::fuse::{BinOp, FuseStats, FusedInstr, FusedTape};
use crate::kernels::{min_nz, KernelKind, KernelSet};
use crate::tape::{Instr, Tape, TapeMode};

/// Target byte size of one worker's SoA register file: small enough to
/// stay L2-resident, large enough to amortise the per-block overhead.
const TARGET_REGFILE_BYTES: usize = 512 * 1024;

/// Picks the default lane-block size for a register file of `num_regs`
/// values of `value_bytes` each.
fn default_chunk(num_regs: usize, value_bytes: usize) -> usize {
    (TARGET_REGFILE_BYTES / (num_regs.max(1) * value_bytes.max(1))).clamp(16, 1024)
}

/// Below this many lanes per thread, sharding costs more than it saves.
const MIN_LANES_PER_THREAD: usize = 32;

/// The result of a batch evaluation.
#[derive(Clone, Debug)]
pub struct BatchResult<V> {
    /// The root value of each lane, in batch order.
    pub values: Vec<V>,
    /// Sticky flags aggregated across every lane and the engine's
    /// parameter conversions.
    pub flags: Flags,
}

/// The result of a flag-capturing batch evaluation.
#[derive(Clone, Debug)]
pub struct FlaggedBatchResult<V> {
    /// The root value of each lane, in batch order.
    pub values: Vec<V>,
    /// The sticky flags each individual lane raised (parameter-conversion
    /// flags included), in batch order.
    pub lane_flags: Vec<Flags>,
    /// The OR of `lane_flags`.
    pub flags: Flags,
}

/// A compiled circuit bound to a number system, ready for bulk
/// evaluation.
///
/// # Examples
///
/// ```
/// use problp_ac::{compile, Semiring};
/// use problp_bayes::{networks, Evidence, EvidenceBatch};
/// use problp_engine::Engine;
/// use problp_num::F64Arith;
///
/// let net = networks::sprinkler();
/// let ac = compile(&net)?;
/// let engine = Engine::from_graph(&ac, Semiring::SumProduct, F64Arith::new())?;
///
/// let batch = EvidenceBatch::from_evidences(
///     net.var_count(),
///     &[Evidence::empty(net.var_count())],
/// )?;
/// let result = engine.evaluate_batch(&batch)?;
/// assert!((result.values[0] - 1.0).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Engine<A: Arith> {
    pub(crate) tape: Tape,
    pub(crate) ctx: A,
    /// Parameter constants pre-converted into the engine's number system;
    /// `consts[p]` is broadcast into register row `param_regs[p]` before
    /// each sweep.
    pub(crate) consts: Vec<A::Value>,
    /// Flags raised converting the constants (merged into every result).
    pub(crate) const_flags: Flags,
    pub(crate) zero: A::Value,
    pub(crate) one: A::Value,
    pub(crate) threads: usize,
    chunk: usize,
    /// Which evaluator core batch sweeps dispatch through.
    kernel: KernelKind,
    /// The fused superinstruction stream, present iff `kernel` is
    /// [`KernelKind::Fused`].
    fused: Option<FusedTape>,
}

impl<A> Engine<A>
where
    A: KernelSet + Clone + Send + Sync,
    A::Value: Clone + Send + Sync,
{
    /// Builds an engine from a compiled tape and an arithmetic context.
    ///
    /// Parameter constants are converted through `ctx` here, once, rather
    /// than per evaluation as the scalar tree-walk does.
    pub fn new(tape: Tape, mut ctx: A) -> Self {
        ctx.clear_flags();
        let consts: Vec<A::Value> = tape.params().iter().map(|&p| ctx.from_f64(p)).collect();
        let const_flags = ctx.flags();
        let zero = ctx.zero();
        let one = ctx.one();
        ctx.clear_flags();
        let chunk = default_chunk(tape.num_regs(), std::mem::size_of::<A::Value>());
        Engine {
            tape,
            ctx,
            consts,
            const_flags,
            zero,
            one,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            chunk,
            kernel: KernelKind::Scalar,
            fused: None,
        }
    }

    /// Compiles `ac` under `semiring` and builds an engine in one step.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Circuit`] for invalid circuits.
    pub fn from_graph(ac: &AcGraph, semiring: Semiring, ctx: A) -> Result<Self, EngineError> {
        Ok(Engine::new(Tape::compile(ac, semiring)?, ctx))
    }

    /// Like [`Engine::from_graph`], but on a **full-values** tape
    /// ([`Tape::compile_full`]): register `i` holds source node `i`'s
    /// value after a sweep, which [`Engine::evaluate_nodes_one`] and
    /// [`Engine::mpe_batch`] require.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Circuit`] for invalid circuits.
    pub fn from_graph_full(ac: &AcGraph, semiring: Semiring, ctx: A) -> Result<Self, EngineError> {
        Ok(Engine::new(Tape::compile_full(ac, semiring)?, ctx))
    }

    /// Caps the number of worker threads. `0` restores the default (all
    /// available cores — the CLI's `--threads 0` convention); `1` forces
    /// single-threaded evaluation.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        self
    }

    /// Sets the lane-block size of the SoA register file. The default is
    /// sized so the register file stays cache-resident
    /// (`~512 KiB / (registers x value size)`, clamped to 16..=1024).
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// Selects the evaluator core batch sweeps run through (see
    /// [`KernelKind`] and the [`crate::kernels`] module docs). The
    /// default is [`KernelKind::Scalar`] — the reference path every other
    /// kernel is proven bit-identical to. [`KernelKind::Fused`] runs the
    /// tape through the peephole fuser ([`Tape::fuse`]) here, once.
    ///
    /// The scalar single-instance paths ([`Engine::evaluate_one`],
    /// [`Engine::evaluate_nodes_one`]) and the per-lane flag capture
    /// ([`Engine::evaluate_batch_flagged`]) always run the reference
    /// instruction stream regardless of this setting.
    pub fn with_kernel(mut self, kernel: KernelKind) -> Self {
        self.kernel = kernel;
        self.fused = match kernel {
            KernelKind::Fused => Some(self.tape.fuse()),
            _ => None,
        };
        self
    }

    /// The evaluator core selected by [`Engine::with_kernel`].
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// The fused superinstruction stream, when the engine runs the
    /// [`KernelKind::Fused`] core.
    pub fn fused_tape(&self) -> Option<&FusedTape> {
        self.fused.as_ref()
    }

    /// Statistics of the fusion pass, when the engine runs the
    /// [`KernelKind::Fused`] core (feeds the
    /// `problp_engine_fused_instrs_total` serving counter).
    pub fn fuse_stats(&self) -> Option<FuseStats> {
        self.fused.as_ref().map(|f| f.stats())
    }

    /// The compiled tape backing this engine.
    pub fn tape(&self) -> &Tape {
        &self.tape
    }

    /// Mutable access to the backing tape. Exists so verifier mutation
    /// tests can corrupt an engine's tape and prove the
    /// [`crate::CircuitPool`] admission gate rejects it; an engine edited
    /// through this computes garbage. Not a stable API.
    #[doc(hidden)]
    pub fn raw_tape_mut(&mut self) -> &mut Tape {
        &mut self.tape
    }

    /// The engine's arithmetic context (a reference hook for differential
    /// harnesses that need to convert or compare engine values — e.g.
    /// `problp-conformance`'s bit-identity checks against the scalar
    /// evaluator and the hardware simulators).
    pub fn context(&self) -> &A {
        &self.ctx
    }

    /// Converts engine values back to `f64` for inspection.
    pub fn to_f64s(&self, values: &[A::Value]) -> Vec<f64> {
        values.iter().map(|v| self.ctx.to_f64(v)).collect()
    }

    pub(crate) fn check_batch(&self, batch: &EvidenceBatch) -> Result<(), EngineError> {
        if batch.var_count() != self.tape.var_count() {
            return Err(EngineError::BatchLengthMismatch {
                batch: batch.var_count(),
                circuit: self.tape.var_count(),
            });
        }
        Ok(())
    }

    /// How many shards to use for `lanes` lanes.
    pub(crate) fn shard_count(&self, lanes: usize) -> usize {
        self.threads
            .min(lanes.div_ceil(MIN_LANES_PER_THREAD))
            .max(1)
    }

    /// Evaluates every lane of the batch, returning root values in batch
    /// order plus the aggregated sticky flags.
    ///
    /// Lanes are sharded across worker threads; results are independent
    /// of the thread count and of the chunk size (each lane's value is
    /// computed by exactly the same instruction sequence).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BatchLengthMismatch`] if the batch ranges
    /// over a different number of variables than the compiled circuit,
    /// and [`EngineError::WorkerPanic`] if a shard worker panicked (the
    /// engine itself stays usable).
    pub fn evaluate_batch(
        &self,
        batch: &EvidenceBatch,
    ) -> Result<BatchResult<A::Value>, EngineError> {
        self.check_batch(batch)?;
        let lanes = batch.lanes();
        let mut values: Vec<A::Value> = vec![self.zero.clone(); lanes];
        let mut flags = self.const_flags;
        if lanes == 0 {
            return Ok(BatchResult { values, flags });
        }

        let shards = self.shard_count(lanes);
        if shards <= 1 {
            // The inline fast path honors the same WorkerPanic contract
            // as the sharded one: a panicking arithmetic must not take
            // down the caller's thread (values are discarded on error,
            // the engine itself holds no mutable state).
            let swept = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.sweep_range(batch, 0, &mut values)
            }))
            .map_err(|payload| EngineError::WorkerPanic {
                message: panic_message(payload),
            })?;
            flags.merge(swept);
        } else {
            let per = lanes.div_ceil(shards);
            let mut slices: Vec<(usize, &mut [A::Value])> = Vec::with_capacity(shards);
            let mut rest = values.as_mut_slice();
            let mut start = 0;
            while !rest.is_empty() {
                let take = per.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                slices.push((start, head));
                start += take;
                rest = tail;
            }
            let joined = std::thread::scope(|scope| {
                let handles: Vec<_> = slices
                    .into_iter()
                    .map(|(start, out)| scope.spawn(move || self.sweep_range(batch, start, out)))
                    .collect();
                // Join every handle before leaving the scope so one
                // panicking shard cannot re-panic the scope exit.
                handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()
            });
            for f in crate::error::collect_worker_results(joined)? {
                flags.merge(f);
            }
        }
        Ok(BatchResult { values, flags })
    }

    /// Like [`Engine::evaluate_batch`], but captures the sticky flags of
    /// every lane individually (fresh context per lane) — the per-instance
    /// range-violation report the fixed/float analyses consume.
    ///
    /// This runs lane-major (no SoA inner loop), so prefer
    /// [`Engine::evaluate_batch`] when aggregate flags suffice.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::evaluate_batch`].
    pub fn evaluate_batch_flagged(
        &self,
        batch: &EvidenceBatch,
    ) -> Result<FlaggedBatchResult<A::Value>, EngineError> {
        self.check_batch(batch)?;
        let lanes = batch.lanes();
        let mut values: Vec<A::Value> = vec![self.zero.clone(); lanes];
        let mut lane_flags: Vec<Flags> = vec![Flags::new(); lanes];
        if lanes > 0 {
            let shards = self.shard_count(lanes);
            let per = lanes.div_ceil(shards);
            let joined = std::thread::scope(|scope| {
                let value_chunks = values.chunks_mut(per);
                let flag_chunks = lane_flags.chunks_mut(per);
                let handles: Vec<_> = value_chunks
                    .zip(flag_chunks)
                    .enumerate()
                    .map(|(i, (vals, flgs))| {
                        scope.spawn(move || self.sweep_lane_major(batch, i * per, vals, flgs))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()
            });
            crate::error::collect_worker_results(joined)?;
        }
        let mut flags = Flags::new();
        for f in &lane_flags {
            flags.merge(*f);
        }
        Ok(FlaggedBatchResult {
            values,
            lane_flags,
            flags,
        })
    }

    /// Evaluates a single evidence instance on the scalar tape path (no
    /// threads, no SoA blocking): the latency-oriented little sibling of
    /// [`Engine::evaluate_batch`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BatchLengthMismatch`] on an evidence length
    /// mismatch.
    pub fn evaluate_one(&self, evidence: &Evidence) -> Result<(A::Value, Flags), EngineError> {
        if evidence.len() != self.tape.var_count() {
            return Err(EngineError::BatchLengthMismatch {
                batch: evidence.len(),
                circuit: self.tape.var_count(),
            });
        }
        let mut ctx = self.ctx.clone();
        ctx.clear_flags();
        let mut regs = self.fresh_regs();
        self.run_instrs(&mut ctx, &mut regs, |var| {
            evidence
                .state(VarId::from_index(var as usize))
                .map_or(-1, |s| s as i32)
        });
        let mut flags = ctx.flags();
        flags.merge(self.const_flags);
        Ok((regs[self.tape.root_reg() as usize].clone(), flags))
    }

    /// Evaluates a single evidence instance on a **full-values** tape,
    /// returning the value of *every* circuit node: `values[i]` is source
    /// node `i`'s value, bit-identical to
    /// [`problp_ac::AcGraph::evaluate_nodes`] under the same arithmetic
    /// and semiring. This is the engine entry point of the max/min value
    /// analyses (`problp_bounds::AcAnalysis`).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NeedsFullValues`] unless the engine was
    /// built from [`Tape::compile_full`], and
    /// [`EngineError::BatchLengthMismatch`] on an evidence length
    /// mismatch.
    pub fn evaluate_nodes_one(
        &self,
        evidence: &Evidence,
    ) -> Result<(Vec<A::Value>, Flags), EngineError> {
        if self.tape.mode() != TapeMode::Full {
            return Err(EngineError::NeedsFullValues);
        }
        if evidence.len() != self.tape.var_count() {
            return Err(EngineError::BatchLengthMismatch {
                batch: evidence.len(),
                circuit: self.tape.var_count(),
            });
        }
        let mut ctx = self.ctx.clone();
        ctx.clear_flags();
        let mut regs = self.fresh_regs();
        self.run_instrs(&mut ctx, &mut regs, |var| {
            evidence
                .state(VarId::from_index(var as usize))
                .map_or(-1, |s| s as i32)
        });
        let mut flags = ctx.flags();
        flags.merge(self.const_flags);
        Ok((regs, flags))
    }

    /// A zero-filled scalar register file with the parameter constants
    /// broadcast into their pinned registers.
    pub(crate) fn fresh_regs(&self) -> Vec<A::Value> {
        let mut regs: Vec<A::Value> = vec![self.zero.clone(); self.tape.num_regs()];
        for (c, &r) in self.consts.iter().zip(self.tape.param_regs()) {
            regs[r as usize] = c.clone();
        }
        regs
    }

    /// Runs the instruction stream once over a scalar register file.
    /// `observed(var)` returns the evidence state of `var` or a negative
    /// value when the variable is unobserved (the [`UNOBSERVED`] column
    /// convention of [`EvidenceBatch`]).
    ///
    /// [`UNOBSERVED`]: problp_bayes::UNOBSERVED
    pub(crate) fn run_instrs(
        &self,
        ctx: &mut A,
        regs: &mut [A::Value],
        observed: impl Fn(u32) -> i32,
    ) {
        for instr in self.tape.instrs() {
            match *instr {
                Instr::LoadIndicator { dst, slot } => {
                    let (var, state) = self.tape.slot(slot);
                    let o = observed(var);
                    regs[dst as usize] = if o >= 0 && o != state as i32 {
                        self.zero.clone()
                    } else {
                        self.one.clone()
                    };
                }
                Instr::Add { dst, lhs, rhs } => {
                    regs[dst as usize] = ctx.add(&regs[lhs as usize], &regs[rhs as usize]);
                }
                Instr::Mul { dst, lhs, rhs } => {
                    regs[dst as usize] = ctx.mul(&regs[lhs as usize], &regs[rhs as usize]);
                }
                Instr::Max { dst, lhs, rhs } => {
                    regs[dst as usize] = ctx.max(&regs[lhs as usize], &regs[rhs as usize]);
                }
                Instr::MinNz { dst, lhs, rhs } => {
                    regs[dst as usize] = min_nz(ctx, &regs[lhs as usize], &regs[rhs as usize]);
                }
            }
        }
    }

    /// SoA sweep of the contiguous lane range starting at `start`, writing
    /// root values into `out` (whose length determines the range) and
    /// returning the shard's sticky flags.
    fn sweep_range(&self, batch: &EvidenceBatch, start: usize, out: &mut [A::Value]) -> Flags {
        let mut ctx = self.ctx.clone();
        ctx.clear_flags();
        let num_regs = self.tape.num_regs();
        let chunk = self.chunk.min(out.len().max(1));
        let mut regs: Vec<A::Value> = vec![self.zero.clone(); num_regs * chunk];
        // Pinned parameter rows are written once: no instruction ever uses
        // them as a destination.
        for (c, &p) in self.consts.iter().zip(self.tape.param_regs()) {
            let p = p as usize;
            for slot in &mut regs[p * chunk..p * chunk + chunk] {
                *slot = c.clone();
            }
        }
        let mut done = 0;
        while done < out.len() {
            let n = chunk.min(out.len() - done);
            let base = start + done;
            match (self.kernel, &self.fused) {
                (KernelKind::Fused, Some(fused)) => {
                    self.sweep_chunk_fused(&mut ctx, batch, fused, &mut regs, chunk, base, n);
                }
                (KernelKind::Simd, _) => {
                    self.sweep_chunk_simd(&mut ctx, batch, &mut regs, chunk, base, n);
                }
                _ => self.sweep_chunk_scalar(&mut ctx, batch, &mut regs, chunk, base, n),
            }
            let root = self.tape.root_reg() as usize * chunk;
            out[done..done + n].clone_from_slice(&regs[root..root + n]);
            done += n;
        }
        ctx.flags()
    }

    /// Broadcasts one indicator slot into its destination row.
    #[allow(clippy::too_many_arguments)]
    fn load_indicator_chunk(
        &self,
        batch: &EvidenceBatch,
        regs: &mut [A::Value],
        chunk: usize,
        dst: u32,
        slot: u32,
        base: usize,
        n: usize,
    ) {
        let (var, state) = self.tape.slot(slot);
        let col = batch.column(VarId::from_index(var as usize));
        let d = dst as usize * chunk;
        for l in 0..n {
            let observed = col[base + l];
            regs[d + l] = if observed >= 0 && observed != state as i32 {
                self.zero.clone()
            } else {
                self.one.clone()
            };
        }
    }

    /// One lane block through the reference scalar core: per-instruction
    /// loops through the `Arith` context, exactly the semantics every
    /// other kernel is proven bit-identical to.
    fn sweep_chunk_scalar(
        &self,
        ctx: &mut A,
        batch: &EvidenceBatch,
        regs: &mut [A::Value],
        chunk: usize,
        base: usize,
        n: usize,
    ) {
        for instr in self.tape.instrs() {
            match *instr {
                Instr::LoadIndicator { dst, slot } => {
                    self.load_indicator_chunk(batch, regs, chunk, dst, slot, base, n);
                }
                Instr::Add { dst, lhs, rhs } => {
                    let (d, a, b) = (
                        dst as usize * chunk,
                        lhs as usize * chunk,
                        rhs as usize * chunk,
                    );
                    for l in 0..n {
                        let v = ctx.add(&regs[a + l], &regs[b + l]);
                        regs[d + l] = v;
                    }
                }
                Instr::Mul { dst, lhs, rhs } => {
                    let (d, a, b) = (
                        dst as usize * chunk,
                        lhs as usize * chunk,
                        rhs as usize * chunk,
                    );
                    for l in 0..n {
                        let v = ctx.mul(&regs[a + l], &regs[b + l]);
                        regs[d + l] = v;
                    }
                }
                Instr::Max { dst, lhs, rhs } => {
                    let (d, a, b) = (
                        dst as usize * chunk,
                        lhs as usize * chunk,
                        rhs as usize * chunk,
                    );
                    for l in 0..n {
                        let v = ctx.max(&regs[a + l], &regs[b + l]);
                        regs[d + l] = v;
                    }
                }
                Instr::MinNz { dst, lhs, rhs } => {
                    let (d, a, b) = (
                        dst as usize * chunk,
                        lhs as usize * chunk,
                        rhs as usize * chunk,
                    );
                    for l in 0..n {
                        let v = min_nz(ctx, &regs[a + l], &regs[b + l]);
                        regs[d + l] = v;
                    }
                }
            }
        }
    }

    /// One lane block through the lane-chunked vector kernels on the
    /// unfused tape ([`KernelKind::Simd`]).
    fn sweep_chunk_simd(
        &self,
        ctx: &mut A,
        batch: &EvidenceBatch,
        regs: &mut [A::Value],
        chunk: usize,
        base: usize,
        n: usize,
    ) {
        for instr in self.tape.instrs() {
            if let Instr::LoadIndicator { dst, slot } = *instr {
                self.load_indicator_chunk(batch, regs, chunk, dst, slot, base, n);
            } else {
                let (op, dst, lhs, rhs) =
                    BinOp::decode(*instr).expect("non-indicator instructions are binary");
                ctx.bin_rows(
                    op,
                    regs,
                    dst as usize * chunk,
                    lhs as usize * chunk,
                    rhs as usize * chunk,
                    n,
                );
            }
        }
    }

    /// One lane block through the fused superinstruction stream
    /// ([`KernelKind::Fused`]): one kernel dispatch per fused op.
    #[allow(clippy::too_many_arguments)]
    fn sweep_chunk_fused(
        &self,
        ctx: &mut A,
        batch: &EvidenceBatch,
        fused: &FusedTape,
        regs: &mut [A::Value],
        chunk: usize,
        base: usize,
        n: usize,
    ) {
        for instr in fused.instrs() {
            match *instr {
                FusedInstr::LoadIndicator { dst, slot } => {
                    self.load_indicator_chunk(batch, regs, chunk, dst, slot, base, n);
                }
                FusedInstr::Bin { op, dst, lhs, rhs } => {
                    ctx.bin_rows(
                        op,
                        regs,
                        dst as usize * chunk,
                        lhs as usize * chunk,
                        rhs as usize * chunk,
                        n,
                    );
                }
                FusedInstr::MulAcc { op, dst, acc, a, b } => {
                    ctx.mul_acc_rows(
                        op,
                        regs,
                        dst as usize * chunk,
                        acc as usize * chunk,
                        a as usize * chunk,
                        b as usize * chunk,
                        n,
                    );
                }
                FusedInstr::Reduce {
                    op,
                    dst,
                    first,
                    lo,
                    hi,
                } => {
                    ctx.reduce_rows(
                        op,
                        regs,
                        chunk,
                        dst as usize * chunk,
                        first as usize * chunk,
                        fused.operands(lo, hi),
                        n,
                    );
                }
            }
        }
    }

    /// Lane-major sweep used by [`Engine::evaluate_batch_flagged`]: one
    /// scalar register file, cleared flags per lane.
    fn sweep_lane_major(
        &self,
        batch: &EvidenceBatch,
        start: usize,
        out: &mut [A::Value],
        flags_out: &mut [Flags],
    ) {
        let mut ctx = self.ctx.clone();
        let mut regs = self.fresh_regs();
        for (i, (out_v, out_f)) in out.iter_mut().zip(flags_out.iter_mut()).enumerate() {
            let lane = start + i;
            ctx.clear_flags();
            self.run_instrs(&mut ctx, &mut regs, |var| {
                batch.column(VarId::from_index(var as usize))[lane]
            });
            *out_v = regs[self.tape.root_reg() as usize].clone();
            let mut f = ctx.flags();
            f.merge(self.const_flags);
            *out_f = f;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use problp_bayes::networks;
    use problp_num::{F64Arith, FixedArith, FixedFormat};

    fn sprinkler_engine() -> (problp_bayes::BayesNet, Engine<F64Arith>) {
        let net = networks::sprinkler();
        let ac = problp_ac::compile(&net).unwrap();
        let engine = Engine::from_graph(&ac, Semiring::SumProduct, F64Arith::new()).unwrap();
        (net, engine)
    }

    fn single_var_evidences(net: &problp_bayes::BayesNet) -> Vec<Evidence> {
        let mut out = vec![Evidence::empty(net.var_count())];
        for v in 0..net.var_count() {
            for s in 0..net.variable(VarId::from_index(v)).arity() {
                let mut e = Evidence::empty(net.var_count());
                e.observe(VarId::from_index(v), s);
                out.push(e);
            }
        }
        out
    }

    #[test]
    fn batch_matches_scalar_tree_walk_bit_for_bit() {
        let (net, engine) = sprinkler_engine();
        let evidences = single_var_evidences(&net);
        let ac = problp_ac::compile(&net).unwrap();
        let batch = EvidenceBatch::from_evidences(net.var_count(), &evidences).unwrap();
        let result = engine.evaluate_batch(&batch).unwrap();
        for (e, got) in evidences.iter().zip(&result.values) {
            let want = ac.evaluate(e).unwrap();
            assert_eq!(want.to_bits(), got.to_bits(), "evidence {e}");
        }
    }

    #[test]
    fn results_are_independent_of_threads_and_chunks() {
        let (net, engine) = sprinkler_engine();
        let evidences: Vec<Evidence> = (0..200).flat_map(|_| single_var_evidences(&net)).collect();
        let batch = EvidenceBatch::from_evidences(net.var_count(), &evidences).unwrap();
        let reference = engine
            .clone()
            .with_threads(1)
            .evaluate_batch(&batch)
            .unwrap();
        for threads in [2, 3, 8] {
            for chunk in [1, 7, 64] {
                let got = engine
                    .clone()
                    .with_threads(threads)
                    .with_chunk(chunk)
                    .evaluate_batch(&batch)
                    .unwrap();
                assert_eq!(
                    reference.values, got.values,
                    "threads={threads} chunk={chunk}"
                );
                assert_eq!(reference.flags, got.flags);
            }
        }
    }

    #[test]
    fn evaluate_one_matches_the_batch_path() {
        let (net, engine) = sprinkler_engine();
        for e in single_var_evidences(&net) {
            let batch =
                EvidenceBatch::from_evidences(net.var_count(), std::slice::from_ref(&e)).unwrap();
            let batched = engine.evaluate_batch(&batch).unwrap();
            let (single, _) = engine.evaluate_one(&e).unwrap();
            assert_eq!(single.to_bits(), batched.values[0].to_bits());
        }
    }

    #[test]
    fn flagged_evaluation_reports_per_lane_flags() {
        let net = networks::sprinkler();
        let ac = problp_ac::compile(&net).unwrap();
        // A deliberately tiny format: conversions are inexact.
        let format = FixedFormat::new(1, 4).unwrap();
        let engine =
            Engine::from_graph(&ac, Semiring::SumProduct, FixedArith::new(format)).unwrap();
        let batch =
            EvidenceBatch::from_evidences(net.var_count(), &single_var_evidences(&net)).unwrap();
        let flagged = engine.evaluate_batch_flagged(&batch).unwrap();
        assert_eq!(flagged.lane_flags.len(), batch.lanes());
        assert!(flagged.flags.inexact, "4 fraction bits cannot be exact");
        // Aggregate equals the OR of the lanes.
        let agg = engine.evaluate_batch(&batch).unwrap();
        assert_eq!(agg.flags, flagged.flags);
    }

    #[test]
    fn empty_batches_are_fine() {
        let (net, engine) = sprinkler_engine();
        let batch = EvidenceBatch::new(net.var_count());
        let result = engine.evaluate_batch(&batch).unwrap();
        assert!(result.values.is_empty());
    }

    #[test]
    fn batch_length_mismatch_is_reported() {
        let (_, engine) = sprinkler_engine();
        let batch = EvidenceBatch::new(2);
        assert!(matches!(
            engine.evaluate_batch(&batch).unwrap_err(),
            EngineError::BatchLengthMismatch { .. }
        ));
    }
}
