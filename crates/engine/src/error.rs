//! Error types for the execution engine.

use problp_ac::{AcError, Semiring};

/// Errors produced by tape compilation and batch evaluation.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum EngineError {
    /// The source circuit was invalid (no root, bad children, ...).
    Circuit(AcError),
    /// The evidence batch ranges over the wrong number of variables.
    BatchLengthMismatch {
        /// Variables in the batch.
        batch: usize,
        /// Variables in the compiled circuit.
        circuit: usize,
    },
    /// The operation reads per-node values and needs a full-values tape
    /// (`Tape::compile_full` / `Engine::from_graph_full`).
    NeedsFullValues,
    /// The operation needs a tape compiled under a different semiring.
    SemiringMismatch {
        /// The semiring the operation requires.
        expected: Semiring,
        /// The semiring the tape was compiled for.
        actual: Semiring,
    },
    /// The query variable is outside the compiled circuit's variable
    /// range.
    QueryVarOutOfRange {
        /// The offending variable index.
        var: usize,
        /// Variables in the compiled circuit.
        vars: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Circuit(e) => write!(f, "circuit error: {e}"),
            EngineError::BatchLengthMismatch { batch, circuit } => write!(
                f,
                "evidence batch ranges over {batch} variables but the circuit has {circuit}"
            ),
            EngineError::NeedsFullValues => write!(
                f,
                "operation reads per-node values and needs a full-values tape \
                 (compile with Tape::compile_full)"
            ),
            EngineError::SemiringMismatch { expected, actual } => write!(
                f,
                "operation needs a {expected:?} tape but this one was compiled for {actual:?}"
            ),
            EngineError::QueryVarOutOfRange { var, vars } => write!(
                f,
                "query variable {var} out of range for a circuit over {vars} variables"
            ),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AcError> for EngineError {
    fn from(e: AcError) -> Self {
        EngineError::Circuit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: EngineError = AcError::MissingRoot.into();
        assert!(matches!(e, EngineError::Circuit(_)));
        let e = EngineError::BatchLengthMismatch {
            batch: 3,
            circuit: 5,
        };
        assert!(e.to_string().contains("3 variables"));
    }
}
