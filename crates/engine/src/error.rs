//! Error types for the execution engine.

use problp_ac::{AcError, Semiring};

use crate::verify::VerifyError;

/// Errors produced by tape compilation and batch evaluation.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum EngineError {
    /// The source circuit was invalid (no root, bad children, ...).
    Circuit(AcError),
    /// The evidence batch ranges over the wrong number of variables.
    BatchLengthMismatch {
        /// Variables in the batch.
        batch: usize,
        /// Variables in the compiled circuit.
        circuit: usize,
    },
    /// The operation reads per-node values and needs a full-values tape
    /// (`Tape::compile_full` / `Engine::from_graph_full`).
    NeedsFullValues,
    /// The operation needs a tape compiled under a different semiring.
    SemiringMismatch {
        /// The semiring the operation requires.
        expected: Semiring,
        /// The semiring the tape was compiled for.
        actual: Semiring,
    },
    /// The query variable is outside the compiled circuit's variable
    /// range.
    QueryVarOutOfRange {
        /// The offending variable index.
        var: usize,
        /// Variables in the compiled circuit.
        vars: usize,
    },
    /// A shard worker panicked during a batched evaluation. The batch's
    /// results are lost, but the engine itself is untouched and can keep
    /// serving — a serving layer should fail the affected requests, not
    /// the process.
    WorkerPanic {
        /// The panic payload, rendered to a string when possible.
        message: String,
    },
    /// The static tape verifier rejected an instruction stream
    /// ([`crate::Tape::verify`] / [`crate::Tape::verify_fused`]); raised
    /// by debug-build compilation and by the [`crate::CircuitPool`]
    /// admission gate.
    Verify(VerifyError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Circuit(e) => write!(f, "circuit error: {e}"),
            EngineError::BatchLengthMismatch { batch, circuit } => write!(
                f,
                "evidence batch ranges over {batch} variables but the circuit has {circuit}"
            ),
            EngineError::NeedsFullValues => write!(
                f,
                "operation reads per-node values and needs a full-values tape \
                 (compile with Tape::compile_full)"
            ),
            EngineError::SemiringMismatch { expected, actual } => write!(
                f,
                "operation needs a {expected:?} tape but this one was compiled for {actual:?}"
            ),
            EngineError::QueryVarOutOfRange { var, vars } => write!(
                f,
                "query variable {var} out of range for a circuit over {vars} variables"
            ),
            EngineError::WorkerPanic { message } => {
                write!(f, "a batch evaluation worker panicked: {message}")
            }
            EngineError::Verify(e) => write!(f, "tape failed static verification: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Circuit(e) => Some(e),
            EngineError::Verify(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AcError> for EngineError {
    fn from(e: AcError) -> Self {
        EngineError::Circuit(e)
    }
}

impl From<VerifyError> for EngineError {
    fn from(e: VerifyError) -> Self {
        EngineError::Verify(e)
    }
}

/// Renders a panic payload (as returned by [`std::thread::JoinHandle::join`]
/// or [`std::panic::catch_unwind`]) into a human-readable message.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Folds a list of shard join results into either the merged worker
/// outputs or the first panic, surfaced as [`EngineError::WorkerPanic`].
/// Every handle must already be joined (so no panic is left to tear down
/// a [`std::thread::scope`]) before this runs.
pub(crate) fn collect_worker_results<T>(
    joined: Vec<std::thread::Result<T>>,
) -> Result<Vec<T>, EngineError> {
    let mut out = Vec::with_capacity(joined.len());
    let mut panic: Option<String> = None;
    for r in joined {
        match r {
            Ok(v) => out.push(v),
            Err(p) => panic = panic.or(Some(panic_message(p))),
        }
    }
    match panic {
        Some(message) => Err(EngineError::WorkerPanic { message }),
        None => Ok(out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: EngineError = AcError::MissingRoot.into();
        assert!(matches!(e, EngineError::Circuit(_)));
        let e = EngineError::BatchLengthMismatch {
            batch: 3,
            circuit: 5,
        };
        assert!(e.to_string().contains("3 variables"));
        let e = EngineError::WorkerPanic {
            message: "boom".to_string(),
        };
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn panic_payloads_render() {
        assert_eq!(panic_message(Box::new("str panic")), "str panic");
        assert_eq!(
            panic_message(Box::new("owned panic".to_string())),
            "owned panic"
        );
        assert_eq!(panic_message(Box::new(42u32)), "opaque panic payload");
    }

    #[test]
    fn worker_results_surface_the_first_panic() {
        let joined: Vec<std::thread::Result<u32>> =
            vec![Ok(1), Err(Box::new("first")), Err(Box::new("second"))];
        match collect_worker_results(joined) {
            Err(EngineError::WorkerPanic { message }) => assert_eq!(message, "first"),
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        let ok: Vec<std::thread::Result<u32>> = vec![Ok(1), Ok(2)];
        assert_eq!(collect_worker_results(ok).unwrap(), vec![1, 2]);
    }
}
