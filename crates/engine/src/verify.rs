//! The static tape verifier: single-pass dataflow checks over the
//! instruction stream, plus symbolic equivalence for fused streams.
//!
//! # What is proven
//!
//! [`Tape::verify`] is a forward dataflow pass over the flat instruction
//! stream establishing, without executing anything:
//!
//! * **bounds** — every register index is inside the register file, every
//!   indicator slot resolves to a real `(variable, state)` pair;
//! * **def-before-use** — every operand read is preceded by a write (or
//!   names a pinned parameter register, pre-filled before each sweep);
//! * **param immutability** — no instruction ever writes a pinned
//!   parameter register;
//! * **chain discipline** — an accumulator continuation (`dst == lhs`)
//!   extends the write immediately before it, with the same operation;
//!   anything else clobbered a live partial. The right operand never
//!   aliases the destination row (the fused kernels keep partials in a
//!   local accumulator, so an aliased `rhs` would observe a stale value);
//! * **full-mode completeness** — a [`TapeMode::Full`] tape elides
//!   nothing: one stable register per source node, each written by at
//!   most one defining chain and never reused;
//! * **root reachability** — the root register is defined, and in
//!   compact mode every instruction contributes to it (the `optimize`
//!   pass runs before compilation, so dead code on a compact tape is a
//!   compiler bug, not an input property).
//!
//! [`Tape::verify_fused`] extends this to a fused superinstruction
//! stream: after the same bounds checks (including the `Reduce` operand
//! side table), both streams are executed **symbolically** over
//! hash-consed expression trees and every observable register — the root
//! in compact mode, all of them in full mode — must hold the *exact same
//! expression*, operand order included. Fold order is therefore preserved
//! by construction: `a + b` and `b + a` are different expressions here,
//! no commutativity is assumed, and a `MulAcc` stays two nested
//! operations (never an FMA).
//!
//! In debug builds the verifier runs automatically after
//! [`Tape::compile`], [`Tape::compile_full`] and [`Tape::fuse`]; release
//! builds run it at serving admission
//! ([`crate::CircuitPool::register`]), where a failing tape is rejected
//! with the typed [`crate::EngineError::Verify`].

use std::collections::HashMap;

use crate::fuse::{BinOp, FusedInstr, FusedTape};
use crate::tape::{Instr, Tape, TapeMode};

/// A well-formedness violation found by the static tape verifier.
///
/// Each variant names the instruction index (into [`Tape::instrs`] or
/// [`FusedTape::instrs`]) and register involved, so a corrupted tape can
/// be localized without executing it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum VerifyError {
    /// An instruction names a register outside the tape's register file.
    RegisterOutOfBounds {
        /// Index of the offending instruction.
        instr: usize,
        /// The out-of-range register.
        reg: u32,
    },
    /// An operand is read before any instruction (or parameter pre-fill)
    /// defines it.
    UseBeforeDef {
        /// Index of the offending instruction.
        instr: usize,
        /// The undefined register.
        reg: u32,
    },
    /// An instruction writes a pinned parameter register, which must stay
    /// immutable across a sweep.
    ParamRegisterWrite {
        /// Index of the offending instruction.
        instr: usize,
        /// The parameter register written.
        reg: u32,
    },
    /// A write lands on a register whose current value is still live: an
    /// accumulator continuation without its chain head, a right operand
    /// aliasing the destination row, or (on a full-values tape) a second
    /// definition of a node's stable output slot.
    ClobberedLiveRegister {
        /// Index of the offending instruction.
        instr: usize,
        /// The clobbered register.
        reg: u32,
    },
    /// A `LoadIndicator` slot index is outside the indicator table, or
    /// the slot's `(variable, state)` pair is outside the model.
    SlotOutOfBounds {
        /// Index of the offending instruction.
        instr: usize,
        /// The out-of-range slot.
        slot: u32,
    },
    /// A `Reduce` operand range does not fit the stream's side table.
    SideTableOutOfBounds {
        /// Index of the offending instruction.
        instr: usize,
        /// Start of the operand range.
        lo: u32,
        /// End (exclusive) of the operand range.
        hi: u32,
    },
    /// The root register is out of range or never defined.
    RootUndefined {
        /// The root register.
        reg: u32,
    },
    /// A compact-mode instruction does not contribute to the root value
    /// (dead code should have been elided before compilation).
    UnreachableInstr {
        /// Index of the dead instruction.
        instr: usize,
    },
    /// A full-values tape elided a node: a non-parameter register is
    /// never written, or the register file is not one slot per source
    /// node.
    FullModeElision {
        /// The uncovered register (or the expected register count when
        /// the file itself is missized).
        reg: u32,
    },
    /// A parameter table entry points outside the register file.
    ParamRegOutOfBounds {
        /// Index into the parameter table.
        index: usize,
        /// The out-of-range register.
        reg: u32,
    },
    /// A fused stream computes a different expression than its source
    /// tape for an observable register (fold order, operand identity and
    /// rounding structure are all part of the expression).
    FusedStreamDivergence {
        /// The diverging register (the root in compact mode).
        reg: u32,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::RegisterOutOfBounds { instr, reg } => {
                write!(f, "instr {instr} names register {reg} outside the file")
            }
            VerifyError::UseBeforeDef { instr, reg } => {
                write!(
                    f,
                    "instr {instr} reads register {reg} before any definition"
                )
            }
            VerifyError::ParamRegisterWrite { instr, reg } => {
                write!(f, "instr {instr} writes pinned parameter register {reg}")
            }
            VerifyError::ClobberedLiveRegister { instr, reg } => {
                write!(f, "instr {instr} clobbers live register {reg}")
            }
            VerifyError::SlotOutOfBounds { instr, slot } => {
                write!(f, "instr {instr} loads unresolvable indicator slot {slot}")
            }
            VerifyError::SideTableOutOfBounds { instr, lo, hi } => {
                write!(
                    f,
                    "instr {instr} reduce range {lo}..{hi} leaves the operand side table"
                )
            }
            VerifyError::RootUndefined { reg } => {
                write!(f, "root register {reg} is never defined")
            }
            VerifyError::UnreachableInstr { instr } => {
                write!(f, "instr {instr} does not contribute to the root value")
            }
            VerifyError::FullModeElision { reg } => {
                write!(f, "full-values tape elides register {reg}")
            }
            VerifyError::ParamRegOutOfBounds { index, reg } => {
                write!(f, "parameter {index} pinned to out-of-range register {reg}")
            }
            VerifyError::FusedStreamDivergence { reg } => {
                write!(
                    f,
                    "fused stream diverges from the source tape at register {reg}"
                )
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// One node of the hash-consed symbolic expression arena used by the
/// fused-stream equivalence check.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum ExprNode {
    /// The pre-filled constant of a parameter register.
    Param(u32),
    /// The evidence indicator of a slot.
    Indicator(u32),
    /// An operation application; operand order is significant (no
    /// commutativity or associativity is assumed anywhere).
    Op(BinOp, u32, u32),
}

/// Hash-consing arena: structurally equal expressions share one id, so
/// equivalence of two streams reduces to integer comparison per register.
#[derive(Default)]
struct ExprArena {
    ids: HashMap<ExprNode, u32>,
}

impl ExprArena {
    fn intern(&mut self, node: ExprNode) -> u32 {
        let next = self.ids.len() as u32;
        *self.ids.entry(node).or_insert(next)
    }
}

/// The initial register state of one symbolic execution: the pinned
/// parameter constants, everything else undefined. Both streams intern
/// into the same arena, so identical expressions share one id.
fn initial_symbolic_regs(
    tape: &Tape,
    arena: &mut ExprArena,
) -> Result<Vec<Option<u32>>, VerifyError> {
    let mut regs: Vec<Option<u32>> = vec![None; tape.num_regs()];
    for (index, &reg) in tape.param_regs().iter().enumerate() {
        if reg as usize >= regs.len() {
            return Err(VerifyError::ParamRegOutOfBounds { index, reg });
        }
        regs[reg as usize] = Some(arena.intern(ExprNode::Param(reg)));
    }
    Ok(regs)
}

/// Reads a symbolic register, failing if no definition reaches it.
fn sym_read(regs: &[Option<u32>], reg: u32, instr: usize) -> Result<u32, VerifyError> {
    regs[reg as usize].ok_or(VerifyError::UseBeforeDef { instr, reg })
}

impl Tape {
    /// Runs the single-pass static verifier over this tape (see the
    /// [module docs](crate::verify) for the properties proven).
    ///
    /// In debug builds this also runs automatically at the end of
    /// [`Tape::compile`] and [`Tape::compile_full`];
    /// [`crate::CircuitPool::register`] runs it in every build as the
    /// serving admission gate.
    ///
    /// # Errors
    ///
    /// Returns the first [`VerifyError`] found, in stream order.
    ///
    /// # Examples
    ///
    /// ```
    /// use problp_ac::{compile, Semiring};
    /// use problp_bayes::networks;
    /// use problp_engine::Tape;
    ///
    /// let ac = compile(&networks::sprinkler())?;
    /// let tape = Tape::compile(&ac, Semiring::SumProduct)?;
    /// tape.verify()?;
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn verify(&self) -> Result<(), VerifyError> {
        let num_regs = self.num_regs() as u32;
        let slots = self.indicator_slots().count() as u32;
        let arities = self.var_arities();

        // Parameter table: in range, and marked immutable + pre-defined.
        let mut is_param = vec![false; num_regs as usize];
        let mut defined = vec![false; num_regs as usize];
        for (index, &reg) in self.param_regs().iter().enumerate() {
            if reg >= num_regs {
                return Err(VerifyError::ParamRegOutOfBounds { index, reg });
            }
            is_param[reg as usize] = true;
            defined[reg as usize] = true;
        }
        if self.root_reg() >= num_regs {
            return Err(VerifyError::RootUndefined {
                reg: self.root_reg(),
            });
        }

        // Forward pass: bounds, def-before-use, param immutability and
        // accumulator chain discipline.
        let instrs = self.instrs();
        for (i, &instr) in instrs.iter().enumerate() {
            match instr {
                Instr::LoadIndicator { dst, slot } => {
                    if dst >= num_regs {
                        return Err(VerifyError::RegisterOutOfBounds { instr: i, reg: dst });
                    }
                    let resolvable = slot < slots && {
                        let (var, state) = self.slot(slot);
                        (var as usize) < arities.len() && (state as usize) < arities[var as usize]
                    };
                    if !resolvable {
                        return Err(VerifyError::SlotOutOfBounds { instr: i, slot });
                    }
                    if is_param[dst as usize] {
                        return Err(VerifyError::ParamRegisterWrite { instr: i, reg: dst });
                    }
                    if self.mode() == TapeMode::Full && defined[dst as usize] {
                        return Err(VerifyError::ClobberedLiveRegister { instr: i, reg: dst });
                    }
                    defined[dst as usize] = true;
                }
                _ => {
                    let Some((op, dst, lhs, rhs)) = BinOp::decode(instr) else {
                        unreachable!("decode covers every binary instruction")
                    };
                    for reg in [dst, lhs, rhs] {
                        if reg >= num_regs {
                            return Err(VerifyError::RegisterOutOfBounds { instr: i, reg });
                        }
                    }
                    for reg in [lhs, rhs] {
                        if !defined[reg as usize] {
                            return Err(VerifyError::UseBeforeDef { instr: i, reg });
                        }
                    }
                    if is_param[dst as usize] {
                        return Err(VerifyError::ParamRegisterWrite { instr: i, reg: dst });
                    }
                    // The destination row never aliases the right operand:
                    // both compilers emit chains as `dst = op(dst, other)`,
                    // and the fused kernels rely on it (partials live in a
                    // local accumulator during a fold).
                    if rhs == dst {
                        return Err(VerifyError::ClobberedLiveRegister { instr: i, reg: dst });
                    }
                    if lhs == dst {
                        // A continuation extends the write immediately
                        // before it, with the same operation — anything
                        // else reads a partial some other node clobbered.
                        let continues = i > 0
                            && matches!(
                                BinOp::decode(instrs[i - 1]),
                                Some((prev_op, prev_dst, _, _))
                                    if prev_dst == dst && prev_op == op
                            );
                        if !continues {
                            return Err(VerifyError::ClobberedLiveRegister { instr: i, reg: dst });
                        }
                    } else if self.mode() == TapeMode::Full && defined[dst as usize] {
                        // Full-values registers are stable per-node output
                        // slots: a second defining chain is a clobber.
                        return Err(VerifyError::ClobberedLiveRegister { instr: i, reg: dst });
                    }
                    defined[dst as usize] = true;
                }
            }
        }

        if !defined[self.root_reg() as usize] {
            return Err(VerifyError::RootUndefined {
                reg: self.root_reg(),
            });
        }

        match self.mode() {
            TapeMode::Full => {
                // Elide nothing: one stable slot per source node, each
                // either a parameter or written by the stream.
                if self.num_regs() != self.stats().source_nodes {
                    return Err(VerifyError::FullModeElision { reg: num_regs });
                }
                if let Some(reg) = defined.iter().position(|d| !d) {
                    return Err(VerifyError::FullModeElision { reg: reg as u32 });
                }
            }
            TapeMode::Compact => {
                // Root reachability: `optimize` ran before compilation, so
                // every instruction must feed the root value. Backward
                // scan with a needed-register set: a write of a needed
                // register is the definition that reaches its reader.
                let mut needed = vec![false; num_regs as usize];
                needed[self.root_reg() as usize] = true;
                for (i, &instr) in instrs.iter().enumerate().rev() {
                    let (dst, reads) = match instr {
                        Instr::LoadIndicator { dst, .. } => (dst, None),
                        Instr::Add { dst, lhs, rhs }
                        | Instr::Mul { dst, lhs, rhs }
                        | Instr::Max { dst, lhs, rhs }
                        | Instr::MinNz { dst, lhs, rhs } => (dst, Some((lhs, rhs))),
                    };
                    if !needed[dst as usize] {
                        return Err(VerifyError::UnreachableInstr { instr: i });
                    }
                    needed[dst as usize] = false;
                    if let Some((lhs, rhs)) = reads {
                        needed[lhs as usize] = true;
                        needed[rhs as usize] = true;
                    }
                }
            }
        }
        Ok(())
    }

    /// Verifies a fused superinstruction stream against this tape: the
    /// structural checks of [`Tape::verify`] plus bounds checks on the
    /// `Reduce` operand side table, then a symbolic execution of both
    /// streams proving every observable register computes the **same
    /// expression** — operand order, fold order and rounding structure
    /// included (see the [module docs](crate::verify)).
    ///
    /// In debug builds [`Tape::fuse`] runs this automatically on its
    /// result.
    ///
    /// # Errors
    ///
    /// Returns the first [`VerifyError`] found: a structural violation in
    /// either stream, or [`VerifyError::FusedStreamDivergence`] naming
    /// the first observable register whose expressions differ.
    pub fn verify_fused(&self, fused: &FusedTape) -> Result<(), VerifyError> {
        self.verify()?;
        let num_regs = self.num_regs() as u32;
        let slots = self.indicator_slots().count() as u32;
        let side_table = fused.operand_table();

        // Structural pass over the fused stream.
        for (i, &instr) in fused.instrs().iter().enumerate() {
            match instr {
                FusedInstr::LoadIndicator { dst, slot } => {
                    if dst >= num_regs {
                        return Err(VerifyError::RegisterOutOfBounds { instr: i, reg: dst });
                    }
                    if slot >= slots {
                        return Err(VerifyError::SlotOutOfBounds { instr: i, slot });
                    }
                }
                FusedInstr::Bin { dst, lhs, rhs, .. } => {
                    for reg in [dst, lhs, rhs] {
                        if reg >= num_regs {
                            return Err(VerifyError::RegisterOutOfBounds { instr: i, reg });
                        }
                    }
                }
                FusedInstr::MulAcc { dst, acc, a, b, .. } => {
                    for reg in [dst, acc, a, b] {
                        if reg >= num_regs {
                            return Err(VerifyError::RegisterOutOfBounds { instr: i, reg });
                        }
                    }
                }
                FusedInstr::Reduce {
                    dst, first, lo, hi, ..
                } => {
                    if lo > hi || hi as usize > side_table.len() {
                        return Err(VerifyError::SideTableOutOfBounds { instr: i, lo, hi });
                    }
                    for reg in [dst, first] {
                        if reg >= num_regs {
                            return Err(VerifyError::RegisterOutOfBounds { instr: i, reg });
                        }
                    }
                    for &reg in fused.operands(lo, hi) {
                        if reg >= num_regs {
                            return Err(VerifyError::RegisterOutOfBounds { instr: i, reg });
                        }
                    }
                }
            }
        }

        // Symbolic execution of both streams over one shared arena.
        let mut arena = ExprArena::default();

        let mut tape_regs = initial_symbolic_regs(self, &mut arena)?;
        for (i, &instr) in self.instrs().iter().enumerate() {
            match instr {
                Instr::LoadIndicator { dst, slot } => {
                    tape_regs[dst as usize] = Some(arena.intern(ExprNode::Indicator(slot)));
                }
                _ => {
                    let Some((op, dst, lhs, rhs)) = BinOp::decode(instr) else {
                        unreachable!("decode covers every binary instruction")
                    };
                    let l = sym_read(&tape_regs, lhs, i)?;
                    let r = sym_read(&tape_regs, rhs, i)?;
                    tape_regs[dst as usize] = Some(arena.intern(ExprNode::Op(op, l, r)));
                }
            }
        }

        let mut fused_regs = initial_symbolic_regs(self, &mut arena)?;
        for (i, &instr) in fused.instrs().iter().enumerate() {
            match instr {
                FusedInstr::LoadIndicator { dst, slot } => {
                    fused_regs[dst as usize] = Some(arena.intern(ExprNode::Indicator(slot)));
                }
                FusedInstr::Bin { op, dst, lhs, rhs } => {
                    let l = sym_read(&fused_regs, lhs, i)?;
                    let r = sym_read(&fused_regs, rhs, i)?;
                    fused_regs[dst as usize] = Some(arena.intern(ExprNode::Op(op, l, r)));
                }
                FusedInstr::MulAcc { op, dst, acc, a, b } => {
                    let av = sym_read(&fused_regs, a, i)?;
                    let bv = sym_read(&fused_regs, b, i)?;
                    let product = arena.intern(ExprNode::Op(BinOp::Mul, av, bv));
                    let accv = sym_read(&fused_regs, acc, i)?;
                    fused_regs[dst as usize] = Some(arena.intern(ExprNode::Op(op, accv, product)));
                }
                FusedInstr::Reduce {
                    op,
                    dst,
                    first,
                    lo,
                    hi,
                } => {
                    let mut accv = sym_read(&fused_regs, first, i)?;
                    for &reg in fused.operands(lo, hi) {
                        let r = sym_read(&fused_regs, reg, i)?;
                        accv = arena.intern(ExprNode::Op(op, accv, r));
                    }
                    fused_regs[dst as usize] = Some(accv);
                }
            }
        }

        // Observable registers must hold identical expressions: the root
        // in compact mode (scratch registers are legitimately elided),
        // every register in full mode (all are per-node outputs).
        match self.mode() {
            TapeMode::Compact => {
                let reg = self.root_reg();
                if tape_regs[reg as usize] != fused_regs[reg as usize] {
                    return Err(VerifyError::FusedStreamDivergence { reg });
                }
            }
            TapeMode::Full => {
                for reg in 0..num_regs {
                    if tape_regs[reg as usize] != fused_regs[reg as usize] {
                        return Err(VerifyError::FusedStreamDivergence { reg });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use problp_ac::{AcGraph, Semiring};
    use problp_bayes::VarId;

    fn v(i: usize) -> VarId {
        VarId::from_index(i)
    }

    /// Σ_s λ_{a,s}·θ_s over a 3-state variable: loads, muls and a chain.
    fn circuit() -> AcGraph {
        let mut g = AcGraph::new(vec![3]);
        let mut prods = Vec::new();
        for s in 0..3 {
            let ind = g.indicator(v(0), s).unwrap();
            let p = g.param(0.2 + s as f64 * 0.2).unwrap();
            prods.push(g.product(vec![ind, p]).unwrap());
        }
        let root = g.sum(prods).unwrap();
        g.set_root(root);
        g
    }

    #[test]
    fn fresh_tapes_verify_in_both_modes_and_semirings() {
        for semiring in [
            Semiring::SumProduct,
            Semiring::MaxProduct,
            Semiring::MinProduct,
        ] {
            let g = circuit();
            let compact = Tape::compile(&g, semiring).unwrap();
            compact.verify().unwrap();
            compact.verify_fused(&compact.fuse()).unwrap();
            let full = Tape::compile_full(&g, semiring).unwrap();
            full.verify().unwrap();
            full.verify_fused(&full.fuse()).unwrap();
        }
    }

    #[test]
    fn constant_root_tape_verifies() {
        let mut g = AcGraph::new(vec![2]);
        let p = g.param(0.25).unwrap();
        g.set_root(p);
        let tape = Tape::compile(&g, Semiring::SumProduct).unwrap();
        tape.verify().unwrap();
        tape.verify_fused(&tape.fuse()).unwrap();
    }

    #[test]
    fn use_before_def_is_caught() {
        let mut tape = Tape::compile(&circuit(), Semiring::SumProduct).unwrap();
        // Swap the first load with the multiply consuming it: the multiply
        // now reads the indicator register before it is defined.
        let instrs = tape.raw_instrs_mut();
        assert!(matches!(instrs[0], Instr::LoadIndicator { .. }));
        assert!(matches!(instrs[1], Instr::Mul { .. }));
        instrs.swap(0, 1);
        assert!(matches!(
            tape.verify(),
            Err(VerifyError::UseBeforeDef { instr: 0, .. })
        ));
    }

    #[test]
    fn fused_divergence_is_caught() {
        let tape = Tape::compile(&circuit(), Semiring::SumProduct).unwrap();
        let mut fused = tape.fuse();
        // Reorder a Reduce's operand side table: same multiset, different
        // fold order — the expression check must reject it.
        let ops = fused.raw_operands_mut();
        assert!(ops.len() >= 2, "the 3-ary sum produces reduce operands");
        ops.swap(0, 1);
        assert!(matches!(
            tape.verify_fused(&fused),
            Err(VerifyError::FusedStreamDivergence { .. })
        ));
    }
}
