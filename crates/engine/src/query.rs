//! Batched MPE and conditional serving on the execution engine.
//!
//! # MPE: argmax traceback on the full-values tape
//!
//! A max-product sweep yields the MPE *value* `max_x Pr(x, e)` in one
//! pass (paper §3.2.1); [`Engine::mpe_batch`] also recovers the
//! maximizing *assignment* per lane. It runs each lane through the
//! full-values tape (every node keeps a stable register), then walks the
//! tape backwards from the root: product chains descend into all
//! operands, max chains descend into the first operand whose value
//! equals the chain's result, and the indicator leaves reached on the
//! way name the chosen states. The decoded assignment is then
//! *verified*: all candidate lanes are re-evaluated fully observed in
//! one batched sweep, and any lane whose joint value does not reproduce
//! its max-product root value bit for bit (possible only on circuits
//! without the smoothness the BN→AC compiler guarantees) falls back to
//! exact sequential conditioning — so the result is always exact, and
//! the fast path is one sweep plus one shared verification sweep instead
//! of the `Σ arity` sweeps of [`problp_ac::AcGraph::mpe_assignment`].
//!
//! # Conditional: joint/marginal lane pairs
//!
//! [`Engine::conditional_batch`] serves `Pr(q = s | e)` the way the
//! paper's hardware does (§3.2.2): one *marginal* (denominator) batch
//! `Pr(e)` plus one *joint* (numerator) batch `Pr(q = s, e)` per state
//! `s`, with the final ratio taken outside the circuit. The per-lane
//! argmax over the joints is the classifier prediction, which is what
//! the accuracy studies in `problp-bench` consume.

use problp_ac::Semiring;
use problp_bayes::{BatchQuery, Evidence, EvidenceBatch, VarId};
use problp_num::Flags;

use crate::engine::{BatchResult, Engine};
use crate::error::EngineError;
use crate::kernels::KernelSet;
use crate::tape::{Instr, Tape, TapeMode};

/// The result of a batched MPE decode ([`Engine::mpe_batch`]).
#[derive(Clone, Debug)]
pub struct MpeBatchResult<V> {
    /// The most probable completion of each lane's evidence: one state
    /// per variable, observed variables keeping their observed states.
    pub assignments: Vec<Vec<usize>>,
    /// The max-product root value `max_x Pr(x, e)` of each lane —
    /// bit-identical to [`problp_ac::AcGraph::evaluate_mpe`] under the
    /// engine's arithmetic.
    pub values: Vec<V>,
    /// Sticky flags aggregated across every lane and the engine's
    /// parameter conversions.
    pub flags: Flags,
}

/// Per-lane outcome of a batched conditional query: whether the
/// posterior ratio was well defined.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConditionalLaneStatus {
    /// The lane's marginal `Pr(e)` was non-zero; its posteriors are
    /// meaningful.
    Ok,
    /// The lane's marginal `Pr(e)` evaluated to exactly zero — the
    /// evidence is impossible under the model (or underflowed to zero in
    /// a low-precision format), so no posterior exists. The lane's
    /// posteriors are deliberately `NaN` and its prediction is
    /// meaningless; a serving layer should fail this lane, not the
    /// batch.
    ImpossibleEvidence,
}

impl ConditionalLaneStatus {
    /// `true` for [`ConditionalLaneStatus::Ok`].
    pub fn is_ok(self) -> bool {
        self == ConditionalLaneStatus::Ok
    }
}

/// The result of a batched conditional query
/// ([`Engine::conditional_batch`]).
#[derive(Clone, Debug)]
pub struct ConditionalBatchResult<V> {
    /// The denominator `Pr(e)` of each lane.
    pub marginals: Vec<V>,
    /// The numerators, `joints[s][lane] = Pr(q = s, e)`.
    pub joints: Vec<Vec<V>>,
    /// The posteriors, `posteriors[lane][s] = Pr(q = s | e)` — the ratio
    /// is taken outside the circuit, in `f64` (paper §3.2.2). All-`NaN`
    /// for lanes whose status is
    /// [`ConditionalLaneStatus::ImpossibleEvidence`].
    pub posteriors: Vec<Vec<f64>>,
    /// The argmax state of each lane's joints: the classifier
    /// prediction (numerators share a denominator, so the joint argmax
    /// is the posterior argmax). Meaningless for impossible-evidence
    /// lanes.
    pub predictions: Vec<usize>,
    /// Per-lane validity: [`ConditionalLaneStatus::ImpossibleEvidence`]
    /// marks lanes whose marginal was exactly zero.
    pub lane_status: Vec<ConditionalLaneStatus>,
    /// Sticky flags aggregated across the marginal and every joint
    /// batch.
    pub flags: Flags,
}

/// The result of [`Engine::evaluate_query`], one variant per
/// [`BatchQuery`] kind.
#[derive(Clone, Debug)]
pub enum QueryBatchResult<V> {
    /// `Pr(e)` per lane.
    Marginal(BatchResult<V>),
    /// Decoded MPE assignments and values per lane.
    Mpe(MpeBatchResult<V>),
    /// Posterior lane pairs for a conditional query.
    Conditional(ConditionalBatchResult<V>),
}

/// The traceback view of one full-tape register: what produced it and
/// from which operand registers.
enum TraceOp {
    /// A pinned parameter register (no producing instruction).
    Const,
    /// Produced by `LoadIndicator` of this slot.
    Indicator(u32),
    /// A product chain over these operand registers.
    Prod(Vec<u32>),
    /// A max chain over these operand registers.
    Choice(Vec<u32>),
}

/// Reconstructs per-register trace ops from a full-values instruction
/// stream (chains write their destination repeatedly; the destination is
/// unique per node in full mode, so grouping by `dst` recovers the
/// operand list).
fn trace_table(tape: &Tape) -> Vec<TraceOp> {
    let mut ops: Vec<TraceOp> = (0..tape.num_regs()).map(|_| TraceOp::Const).collect();
    let chain = |ops: &mut Vec<TraceOp>, dst: u32, lhs: u32, rhs: u32, prod: bool| {
        if lhs == dst {
            match &mut ops[dst as usize] {
                TraceOp::Prod(c) | TraceOp::Choice(c) => c.push(rhs),
                _ => unreachable!("chain continuation follows a chain head"),
            }
        } else {
            ops[dst as usize] = if prod {
                TraceOp::Prod(vec![lhs, rhs])
            } else {
                TraceOp::Choice(vec![lhs, rhs])
            };
        }
    };
    for instr in tape.instrs() {
        match *instr {
            Instr::LoadIndicator { dst, slot } => {
                ops[dst as usize] = TraceOp::Indicator(slot);
            }
            Instr::Mul { dst, lhs, rhs } => chain(&mut ops, dst, lhs, rhs, true),
            Instr::Add { dst, lhs, rhs }
            | Instr::Max { dst, lhs, rhs }
            | Instr::MinNz { dst, lhs, rhs } => chain(&mut ops, dst, lhs, rhs, false),
        }
    }
    ops
}

/// Walks the chosen subcircuit from the root, collecting the indicator
/// states it commits to. Returns `None` when the walk does not determine
/// a complete, evidence-consistent assignment (conflicting or missing
/// indicators), in which case the caller falls back to exact sequential
/// conditioning.
fn traceback(
    ops: &[TraceOp],
    tape: &Tape,
    values: &[f64],
    observed: impl Fn(usize) -> i32,
) -> Option<Vec<usize>> {
    let mut chosen: Vec<Option<usize>> = vec![None; tape.var_count()];
    let mut stack = vec![tape.root_reg()];
    while let Some(r) = stack.pop() {
        match &ops[r as usize] {
            TraceOp::Const => {}
            TraceOp::Indicator(slot) => {
                let (var, state) = tape.slot(*slot);
                let (var, state) = (var as usize, state as usize);
                match chosen[var] {
                    Some(s) if s != state => return None,
                    _ => chosen[var] = Some(state),
                }
            }
            TraceOp::Prod(children) => stack.extend_from_slice(children),
            TraceOp::Choice(children) => {
                // Any operand achieving the chain's value witnesses the
                // max; verification catches the (non-smooth) cases where
                // the witness does not extend to a global assignment.
                let target = values[r as usize].to_bits();
                let pick = children
                    .iter()
                    .find(|&&c| values[c as usize].to_bits() == target)?;
                stack.push(*pick);
            }
        }
    }
    let mut assignment = Vec::with_capacity(chosen.len());
    for (var, state) in chosen.into_iter().enumerate() {
        let o = observed(var);
        match state {
            // The chosen subcircuit must agree with the lane's evidence.
            Some(s) if o >= 0 && o != s as i32 => return None,
            Some(s) => assignment.push(s),
            // Untouched variable: keep the observed state if any; an
            // unobserved untouched variable means the circuit was not
            // smooth here — decode it exactly instead.
            None if o >= 0 => assignment.push(o as usize),
            None => return None,
        }
    }
    Some(assignment)
}

impl<A> Engine<A>
where
    A: KernelSet + Clone + Send + Sync,
    A::Value: Clone + Send + Sync,
{
    /// Decodes the most probable explanation of every lane: the
    /// completion of the lane's evidence with the highest joint
    /// probability, and that probability (see the module docs for the
    /// traceback-plus-verification scheme).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::SemiringMismatch`] unless the tape was
    /// compiled for [`Semiring::MaxProduct`],
    /// [`EngineError::NeedsFullValues`] unless it is a full-values tape,
    /// [`EngineError::BatchLengthMismatch`] on a batch shape mismatch,
    /// and [`EngineError::WorkerPanic`] if a shard worker panicked (the
    /// engine stays usable).
    ///
    /// # Examples
    ///
    /// ```
    /// use problp_ac::{compile, Semiring};
    /// use problp_bayes::{networks, Evidence, EvidenceBatch};
    /// use problp_engine::Engine;
    /// use problp_num::F64Arith;
    ///
    /// let net = networks::sprinkler();
    /// let ac = compile(&net)?;
    /// let engine = Engine::from_graph_full(&ac, Semiring::MaxProduct, F64Arith::new())?;
    ///
    /// let batch = EvidenceBatch::from_evidences(
    ///     net.var_count(),
    ///     &[Evidence::empty(net.var_count())],
    /// )?;
    /// let mpe = engine.mpe_batch(&batch)?;
    /// let (oracle, oracle_value) = net.mpe(&Evidence::empty(net.var_count()));
    /// assert_eq!(mpe.assignments[0], oracle);
    /// assert!((mpe.values[0] - oracle_value).abs() < 1e-12);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn mpe_batch(
        &self,
        batch: &EvidenceBatch,
    ) -> Result<MpeBatchResult<A::Value>, EngineError> {
        if self.tape.semiring() != Semiring::MaxProduct {
            return Err(EngineError::SemiringMismatch {
                expected: Semiring::MaxProduct,
                actual: self.tape.semiring(),
            });
        }
        if self.tape.mode() != TapeMode::Full {
            return Err(EngineError::NeedsFullValues);
        }
        self.check_batch(batch)?;
        let lanes = batch.lanes();
        let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); lanes];
        let mut values: Vec<A::Value> = vec![self.zero.clone(); lanes];
        let mut decoded: Vec<bool> = vec![false; lanes];
        let mut flags = self.const_flags;
        if lanes == 0 {
            return Ok(MpeBatchResult {
                assignments,
                values,
                flags,
            });
        }

        // Phase 1 (sharded): per-lane full sweep + traceback.
        let ops = trace_table(&self.tape);
        let per = lanes.div_ceil(self.shard_count(lanes));
        let shard_flags = std::thread::scope(|scope| {
            let work = values
                .chunks_mut(per)
                .zip(assignments.chunks_mut(per))
                .zip(decoded.chunks_mut(per))
                .enumerate();
            let handles: Vec<_> = work
                .map(|(shard, ((vals, asgs), dones))| {
                    let ops = &ops;
                    scope.spawn(move || {
                        let mut ctx = self.ctx.clone();
                        ctx.clear_flags();
                        let mut regs = self.fresh_regs();
                        let mut f64s = vec![0.0f64; regs.len()];
                        let lane_iter = vals.iter_mut().zip(asgs.iter_mut()).zip(dones.iter_mut());
                        for (i, ((out_v, out_a), out_d)) in lane_iter.enumerate() {
                            let lane = shard * per + i;
                            self.run_instrs(&mut ctx, &mut regs, |var| {
                                batch.column(VarId::from_index(var as usize))[lane]
                            });
                            *out_v = regs[self.tape.root_reg() as usize].clone();
                            for (d, r) in f64s.iter_mut().zip(&regs) {
                                *d = ctx.to_f64(r);
                            }
                            let observed = |var: usize| batch.column(VarId::from_index(var))[lane];
                            if let Some(a) = traceback(ops, &self.tape, &f64s, observed) {
                                *out_a = a;
                                *out_d = true;
                            }
                        }
                        ctx.flags()
                    })
                })
                .collect();
            // Join every handle before leaving the scope so one panicking
            // shard cannot re-panic the scope exit.
            handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()
        });
        for f in crate::error::collect_worker_results(shard_flags)? {
            flags.merge(f);
        }

        // Phase 2: verify every traceback candidate in one shared batched
        // sweep — the fully observed assignment must reproduce the lane's
        // max-product root value exactly.
        let var_count = self.tape.var_count();
        let mut candidates = EvidenceBatch::new(var_count);
        let mut candidate_lanes = Vec::new();
        for lane in 0..lanes {
            if decoded[lane] {
                let mut e = Evidence::empty(var_count);
                for (v, &s) in assignments[lane].iter().enumerate() {
                    e.observe(VarId::from_index(v), s);
                }
                candidates.push(&e);
                candidate_lanes.push(lane);
            }
        }
        if !candidates.is_empty() {
            let check = self.evaluate_batch(&candidates)?;
            for (k, &lane) in candidate_lanes.iter().enumerate() {
                let joint = self.ctx.to_f64(&check.values[k]);
                let root = self.ctx.to_f64(&values[lane]);
                if joint.to_bits() != root.to_bits() {
                    decoded[lane] = false;
                }
            }
        }

        // Phase 3: exact sequential-conditioning fallback for the lanes
        // the traceback could not decode (the root value stays the
        // authoritative phase-1 sweep result).
        for lane in 0..lanes {
            if !decoded[lane] {
                let (assignment, f) = self.mpe_sequential(&batch.evidence(lane))?;
                assignments[lane] = assignment;
                flags.merge(f);
            }
        }
        Ok(MpeBatchResult {
            assignments,
            values,
            flags,
        })
    }

    /// Exact MPE decoding by sequential conditioning (the scheme of
    /// [`problp_ac::AcGraph::mpe_assignment`], on the tape): clamp each
    /// unobserved variable to the state keeping the max-product value
    /// maximal, then move on.
    fn mpe_sequential(&self, evidence: &Evidence) -> Result<(Vec<usize>, Flags), EngineError> {
        let mut fixed = evidence.clone();
        let mut flags = Flags::new();
        let arities = self.tape.var_arities();
        for (v, &arity) in arities.iter().enumerate() {
            let var = VarId::from_index(v);
            if fixed.state(var).is_some() {
                continue;
            }
            let mut best_state = 0usize;
            let mut best_value = f64::NEG_INFINITY;
            for s in 0..arity {
                fixed.observe(var, s);
                let (value, f) = self.evaluate_one(&fixed)?;
                flags.merge(f);
                let value = self.ctx.to_f64(&value);
                if value > best_value {
                    best_value = value;
                    best_state = s;
                }
            }
            fixed.observe(var, best_state);
        }
        let assignment = (0..arities.len())
            .map(|v| fixed.state(VarId::from_index(v)).expect("all fixed"))
            .collect();
        Ok((assignment, flags))
    }

    /// Serves the conditional posterior `Pr(q = s | e)` for every lane
    /// and every state `s` of `query_var`: one marginal (denominator)
    /// sweep plus one joint (numerator) sweep per state, ratios taken
    /// outside the circuit in `f64` (paper §3.2.2). `predictions` holds
    /// each lane's joint argmax — the classifier decision.
    ///
    /// Any observation of `query_var` in the batch is overridden by the
    /// per-state clamping; leave the query variable unobserved.
    ///
    /// Lanes whose marginal `Pr(e)` is exactly zero (impossible
    /// evidence) are marked
    /// [`ConditionalLaneStatus::ImpossibleEvidence`] in `lane_status`,
    /// with all-`NaN` posteriors — the division is never performed, so
    /// no silent `inf`/`NaN` reaches the predictions unannounced.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::SemiringMismatch`] unless the tape was
    /// compiled for [`Semiring::SumProduct`],
    /// [`EngineError::QueryVarOutOfRange`] for an unknown query
    /// variable, and [`EngineError::BatchLengthMismatch`] on a batch
    /// shape mismatch.
    ///
    /// # Examples
    ///
    /// ```
    /// use problp_ac::{compile, Semiring};
    /// use problp_bayes::{networks, Evidence, EvidenceBatch};
    /// use problp_engine::Engine;
    /// use problp_num::F64Arith;
    ///
    /// let net = networks::sprinkler();
    /// let ac = compile(&net)?;
    /// let engine = Engine::from_graph(&ac, Semiring::SumProduct, F64Arith::new())?;
    ///
    /// let rain = net.find("Rain").unwrap();
    /// let mut e = Evidence::empty(net.var_count());
    /// e.observe(net.find("WetGrass").unwrap(), 1);
    /// let batch = EvidenceBatch::from_evidences(net.var_count(), &[e.clone()])?;
    /// let cond = engine.conditional_batch(&batch, rain)?;
    /// let oracle = net.conditional(rain, 1, &e);
    /// assert!((cond.posteriors[0][1] - oracle).abs() < 1e-12);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn conditional_batch(
        &self,
        batch: &EvidenceBatch,
        query_var: VarId,
    ) -> Result<ConditionalBatchResult<A::Value>, EngineError> {
        if self.tape.semiring() != Semiring::SumProduct {
            return Err(EngineError::SemiringMismatch {
                expected: Semiring::SumProduct,
                actual: self.tape.semiring(),
            });
        }
        self.check_batch(batch)?;
        if query_var.index() >= self.tape.var_count() {
            return Err(EngineError::QueryVarOutOfRange {
                var: query_var.index(),
                vars: self.tape.var_count(),
            });
        }
        let states = self.tape.var_arities()[query_var.index()];
        let lanes = batch.lanes();
        let marginals = self.evaluate_batch(batch)?;
        let mut flags = marginals.flags;
        let mut joints: Vec<Vec<A::Value>> = Vec::with_capacity(states);
        // One working copy stepped through the states in place, instead
        // of a full columnar clone per state.
        let mut working = batch.clone();
        for s in 0..states {
            working.observe_all(query_var, s);
            let joint = self.evaluate_batch(&working)?;
            flags.merge(joint.flags);
            joints.push(joint.values);
        }
        let mut posteriors = vec![vec![0.0f64; states]; lanes];
        let mut predictions = vec![0usize; lanes];
        let mut lane_status = vec![ConditionalLaneStatus::Ok; lanes];
        for lane in 0..lanes {
            let den = self.ctx.to_f64(&marginals.values[lane]);
            if den == 0.0 {
                // Impossible (or fully underflowed) evidence: there is no
                // posterior. Mark the lane instead of letting `0/0` or
                // `x/0` leak NaN/inf into downstream predictions
                // unannounced.
                lane_status[lane] = ConditionalLaneStatus::ImpossibleEvidence;
                posteriors[lane].fill(f64::NAN);
                continue;
            }
            let mut best = f64::NEG_INFINITY;
            for (s, joint) in joints.iter().enumerate() {
                let num = self.ctx.to_f64(&joint[lane]);
                posteriors[lane][s] = num / den;
                if num > best {
                    best = num;
                    predictions[lane] = s;
                }
            }
        }
        Ok(ConditionalBatchResult {
            marginals: marginals.values,
            joints,
            posteriors,
            predictions,
            lane_status,
            flags,
        })
    }

    /// Serves a [`BatchQuery`] descriptor: dispatches to
    /// [`Engine::evaluate_batch`], [`Engine::mpe_batch`] or
    /// [`Engine::conditional_batch`].
    ///
    /// # Errors
    ///
    /// Whatever the dispatched operation returns.
    pub fn evaluate_query(
        &self,
        batch: &EvidenceBatch,
        query: BatchQuery,
    ) -> Result<QueryBatchResult<A::Value>, EngineError> {
        match query {
            BatchQuery::Marginal => Ok(QueryBatchResult::Marginal(self.evaluate_batch(batch)?)),
            BatchQuery::Mpe => Ok(QueryBatchResult::Mpe(self.mpe_batch(batch)?)),
            BatchQuery::Conditional { query_var } => Ok(QueryBatchResult::Conditional(
                self.conditional_batch(batch, query_var)?,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use problp_ac::compile;
    use problp_bayes::networks;
    use problp_num::{Arith, F64Arith, FixedArith, FixedFormat};

    /// The canonical workload pool: empty evidence plus every
    /// single-variable observation.
    fn single_and_empty_evidences(net: &problp_bayes::BayesNet) -> Vec<Evidence> {
        let arities: Vec<usize> = (0..net.var_count())
            .map(|v| net.variable(VarId::from_index(v)).arity())
            .collect();
        problp_bayes::single_variable_evidences(&arities)
    }

    #[test]
    fn mpe_batch_matches_the_scalar_decoder() {
        for net in [networks::figure1(), networks::sprinkler(), networks::asia()] {
            let ac = compile(&net).unwrap();
            let evidences = single_and_empty_evidences(&net);
            let batch = EvidenceBatch::from_evidences(net.var_count(), &evidences).unwrap();
            let engine =
                Engine::from_graph_full(&ac, Semiring::MaxProduct, F64Arith::new()).unwrap();
            let mpe = engine.mpe_batch(&batch).unwrap();
            for (lane, e) in evidences.iter().enumerate() {
                let (_, oracle_value) = ac.mpe_assignment(e).unwrap();
                assert_eq!(
                    mpe.values[lane].to_bits(),
                    oracle_value.to_bits(),
                    "lane {lane}"
                );
                // The decoded assignment achieves the value.
                let joint = net.joint_probability(&mpe.assignments[lane]);
                assert!((joint - oracle_value).abs() < 1e-12, "lane {lane}");
                // And respects the evidence.
                for (var, s) in e.iter() {
                    assert_eq!(mpe.assignments[lane][var.index()], s);
                }
            }
        }
    }

    #[test]
    fn mpe_batch_is_exact_in_low_precision_too() {
        let net = networks::sprinkler();
        let ac = compile(&net).unwrap();
        let format = FixedFormat::new(1, 10).unwrap();
        let engine =
            Engine::from_graph_full(&ac, Semiring::MaxProduct, FixedArith::new(format)).unwrap();
        let evidences = single_and_empty_evidences(&net);
        let batch = EvidenceBatch::from_evidences(net.var_count(), &evidences).unwrap();
        let mpe = engine.mpe_batch(&batch).unwrap();
        // The root value matches the scalar low-precision walk bit for bit.
        let mut ctx = FixedArith::new(format);
        for (lane, e) in evidences.iter().enumerate() {
            let scalar = ac.evaluate_with(&mut ctx, e, Semiring::MaxProduct).unwrap();
            assert_eq!(
                ctx.to_f64(&scalar).to_bits(),
                engine.ctx.to_f64(&mpe.values[lane]).to_bits(),
                "lane {lane}"
            );
        }
    }

    #[test]
    fn mpe_batch_rejects_wrong_tapes() {
        let net = networks::figure1();
        let ac = compile(&net).unwrap();
        let batch = EvidenceBatch::new(net.var_count());
        let sum = Engine::from_graph_full(&ac, Semiring::SumProduct, F64Arith::new()).unwrap();
        assert!(matches!(
            sum.mpe_batch(&batch).unwrap_err(),
            EngineError::SemiringMismatch { .. }
        ));
        let compact = Engine::from_graph(&ac, Semiring::MaxProduct, F64Arith::new()).unwrap();
        assert!(matches!(
            compact.mpe_batch(&batch).unwrap_err(),
            EngineError::NeedsFullValues
        ));
    }

    #[test]
    fn conditional_batch_matches_the_enumeration_oracle() {
        let net = networks::sprinkler();
        let ac = compile(&net).unwrap();
        let engine = Engine::from_graph(&ac, Semiring::SumProduct, F64Arith::new()).unwrap();
        let rain = net.find("Rain").unwrap();
        let wet = net.find("WetGrass").unwrap();
        let mut e = Evidence::empty(net.var_count());
        e.observe(wet, 1);
        let batch =
            EvidenceBatch::from_evidences(net.var_count(), &[e.clone(), Evidence::empty(4)])
                .unwrap();
        let cond = engine.conditional_batch(&batch, rain).unwrap();
        assert_eq!(cond.joints.len(), 2);
        for s in 0..2 {
            let oracle = net.conditional(rain, s, &e);
            assert!(
                (cond.posteriors[0][s] - oracle).abs() < 1e-12,
                "state {s}: {} vs {oracle}",
                cond.posteriors[0][s]
            );
        }
        // Posteriors normalize.
        for lane in 0..batch.lanes() {
            let sum: f64 = cond.posteriors[lane].iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            // The prediction achieves the maximum posterior (ties keep
            // the lowest state).
            let best = cond.posteriors[lane]
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(cond.posteriors[lane][cond.predictions[lane]], best);
        }
    }

    #[test]
    fn conditional_batch_rejects_bad_inputs() {
        let net = networks::figure1();
        let ac = compile(&net).unwrap();
        let engine = Engine::from_graph(&ac, Semiring::MaxProduct, F64Arith::new()).unwrap();
        let batch = EvidenceBatch::new(net.var_count());
        assert!(matches!(
            engine
                .conditional_batch(&batch, VarId::from_index(0))
                .unwrap_err(),
            EngineError::SemiringMismatch { .. }
        ));
        let engine = Engine::from_graph(&ac, Semiring::SumProduct, F64Arith::new()).unwrap();
        assert!(matches!(
            engine
                .conditional_batch(&batch, VarId::from_index(99))
                .unwrap_err(),
            EngineError::QueryVarOutOfRange { .. }
        ));
    }

    #[test]
    fn evaluate_query_dispatches_every_kind() {
        let net = networks::sprinkler();
        let ac = compile(&net).unwrap();
        let batch =
            EvidenceBatch::from_evidences(net.var_count(), &[Evidence::empty(net.var_count())])
                .unwrap();
        let sum = Engine::from_graph(&ac, Semiring::SumProduct, F64Arith::new()).unwrap();
        assert!(matches!(
            sum.evaluate_query(&batch, BatchQuery::Marginal).unwrap(),
            QueryBatchResult::Marginal(_)
        ));
        assert!(matches!(
            sum.evaluate_query(
                &batch,
                BatchQuery::Conditional {
                    query_var: VarId::from_index(0)
                }
            )
            .unwrap(),
            QueryBatchResult::Conditional(_)
        ));
        let max = Engine::from_graph_full(&ac, Semiring::MaxProduct, F64Arith::new()).unwrap();
        assert!(matches!(
            max.evaluate_query(&batch, BatchQuery::Mpe).unwrap(),
            QueryBatchResult::Mpe(_)
        ));
    }
}
