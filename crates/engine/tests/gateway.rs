//! End-to-end tests of the HTTP query gateway over real sockets:
//! bit-identity of every answered query against the uncached
//! `CircuitPool::serve_one` reference path, the typed-error → status
//! mapping (401/404/400/413/422/429 + `Retry-After`), worker-pool
//! concurrency, and the `problp_gateway_*` instrumentation.

use std::sync::Arc;
use std::time::{Duration, Instant};

use problp_ac::compile;
use problp_bayes::{networks, BatchQuery, BayesNetBuilder, Evidence, VarId};
use problp_engine::serve::gateway::error_status;
use problp_engine::{
    CircuitPool, Gateway, GatewayConfig, Priority, ServeConfig, ServeError, ServeRequest,
    ServeResponse, Server,
};
use problp_num::F64Arith;
use problp_telemetry::{http_post, http_request, metric_names, JsonValue};

fn two_model_server(config: ServeConfig) -> Arc<Server<F64Arith>> {
    let mut pool = CircuitPool::new(F64Arith::new());
    pool.register(
        "sprinkler",
        &compile(&networks::sprinkler()).expect("compile"),
    )
    .expect("register sprinkler");
    pool.register("asia", &compile(&networks::asia()).expect("compile"))
        .expect("register asia");
    Arc::new(Server::start(pool, config))
}

fn tokens() -> Vec<(String, String)> {
    vec![
        ("tok-sprinkler".to_string(), "sprinkler".to_string()),
        ("tok-asia".to_string(), "asia".to_string()),
        ("tok-ghost".to_string(), "ghost".to_string()),
    ]
}

fn auth(token: &str) -> [(&'static str, String); 1] {
    [("Authorization", format!("Bearer {token}"))]
}

fn evidence_json(entries: &[Option<usize>]) -> String {
    let lanes: Vec<String> = entries
        .iter()
        .map(|e| match e {
            Some(s) => s.to_string(),
            None => "null".to_string(),
        })
        .collect();
    format!("[{}]", lanes.join(", "))
}

fn evidence_from(entries: &[Option<usize>]) -> Evidence {
    let mut evidence = Evidence::empty(entries.len());
    for (i, e) in entries.iter().enumerate() {
        if let Some(s) = e {
            evidence.observe(VarId::from_index(i), *s);
        }
    }
    evidence
}

#[test]
fn answers_are_bit_identical_to_serve_one() {
    let server = two_model_server(ServeConfig::default());
    let gateway = Gateway::start(
        Arc::clone(&server),
        GatewayConfig {
            tokens: tokens(),
            ..GatewayConfig::default()
        },
    )
    .expect("start gateway");
    let addr = gateway.local_addr();

    let cases: Vec<(&str, &str, Vec<Option<usize>>, &str)> = vec![
        ("tok-sprinkler", "marginal", vec![None; 4], "interactive"),
        (
            "tok-sprinkler",
            "marginal",
            vec![Some(0), None, Some(1), None],
            "batch",
        ),
        (
            "tok-sprinkler",
            "mpe",
            vec![None, Some(1), None, None],
            "interactive",
        ),
        ("tok-asia", "marginal", vec![None; 8], "interactive"),
        ("tok-asia", "mpe", vec![None; 8], "batch"),
    ];
    for (token, kind, entries, priority) in cases {
        let body = format!(
            r#"{{"query": "{kind}", "evidence": {}, "priority": "{priority}"}}"#,
            evidence_json(&entries)
        );
        let (code, _headers, text) =
            http_post(&addr, "/v1/query", &auth(token), &body).expect("post");
        assert_eq!(code, 200, "{kind}: {text}");
        let doc = JsonValue::parse(&text).expect("response json");
        let model = tokens()
            .iter()
            .find(|(t, _)| t == token)
            .map(|(_, m)| m.clone())
            .expect("token");
        let reference = server.pool().serve_one(&ServeRequest {
            model,
            evidence: evidence_from(&entries),
            query: match kind {
                "marginal" => BatchQuery::Marginal,
                _ => BatchQuery::Mpe,
            },
            priority: Priority::Interactive,
        });
        match reference.expect("reference answers") {
            ServeResponse::Marginal { value, .. } => {
                let got = doc.get("value").and_then(JsonValue::as_f64).expect("value");
                assert_eq!(got.to_bits(), value.to_bits(), "{kind} value drifted");
            }
            ServeResponse::Mpe {
                assignment, value, ..
            } => {
                let got_value = doc.get("value").and_then(JsonValue::as_f64).expect("value");
                assert_eq!(got_value.to_bits(), value.to_bits(), "mpe value drifted");
                let got_assignment: Vec<usize> = doc
                    .get("assignment")
                    .and_then(JsonValue::as_array)
                    .expect("assignment")
                    .iter()
                    .map(|v| v.as_f64().expect("state") as usize)
                    .collect();
                assert_eq!(got_assignment, assignment);
            }
            other => panic!("unexpected reference {other:?}"),
        }
    }

    // Conditional: posteriors bit for bit plus the prediction.
    let entries = [Some(1), None, None, None];
    let body = format!(
        r#"{{"query": "conditional", "query_var": 2, "evidence": {}}}"#,
        evidence_json(&entries)
    );
    let (code, _headers, text) =
        http_post(&addr, "/v1/query", &auth("tok-sprinkler"), &body).expect("post");
    assert_eq!(code, 200, "{text}");
    let doc = JsonValue::parse(&text).expect("response json");
    let reference = server
        .pool()
        .serve_one(&ServeRequest {
            model: "sprinkler".to_string(),
            evidence: evidence_from(&entries),
            query: BatchQuery::Conditional {
                query_var: VarId::from_index(2),
            },
            priority: Priority::Interactive,
        })
        .expect("reference conditional");
    match reference {
        ServeResponse::Conditional {
            posteriors,
            prediction,
            ..
        } => {
            let got: Vec<f64> = doc
                .get("posteriors")
                .and_then(JsonValue::as_array)
                .expect("posteriors")
                .iter()
                .map(|v| v.as_f64().expect("posterior"))
                .collect();
            assert_eq!(got.len(), posteriors.len());
            for (g, r) in got.iter().zip(&posteriors) {
                assert_eq!(g.to_bits(), r.to_bits(), "posterior drifted");
            }
            let got_prediction = doc
                .get("prediction")
                .and_then(JsonValue::as_f64)
                .expect("prediction") as usize;
            assert_eq!(got_prediction, prediction);
        }
        other => panic!("unexpected reference {other:?}"),
    }
}

#[test]
fn auth_failures_are_401_and_unknown_models_404() {
    let server = two_model_server(ServeConfig::default());
    let gateway = Gateway::start(
        Arc::clone(&server),
        GatewayConfig {
            tokens: tokens(),
            ..GatewayConfig::default()
        },
    )
    .expect("start gateway");
    let addr = gateway.local_addr();
    let good = r#"{"query": "marginal", "evidence": [null, null, null, null]}"#;

    // No Authorization header at all.
    let (code, _h, body) = http_post(&addr, "/v1/query", &[], good).expect("post");
    assert_eq!(code, 401, "{body}");
    assert!(body.contains("\"unauthorized\""));
    // Unknown token.
    let (code, _h, _b) = http_post(&addr, "/v1/query", &auth("tok-wrong"), good).expect("post");
    assert_eq!(code, 401);
    // Non-bearer scheme.
    let (code, _h, _b) = http_post(
        &addr,
        "/v1/query",
        &[("Authorization", "Basic dXNlcjpwdw==".to_string())],
        good,
    )
    .expect("post");
    assert_eq!(code, 401);
    // A valid token granting a model the pool does not host.
    let (code, _h, body) = http_post(&addr, "/v1/query", &auth("tok-ghost"), good).expect("post");
    assert_eq!(code, 404, "{body}");
    assert!(body.contains("\"unknown_model\""));
    // Unknown path and unsupported method.
    let (code, _h, _b) = http_post(&addr, "/v2/query", &auth("tok-sprinkler"), good).expect("post");
    assert_eq!(code, 404);
    let (code, _h, body) =
        http_request(&addr, "GET", "/v1/query", &auth("tok-sprinkler"), &[]).expect("get");
    assert_eq!(code, 405, "{body}");
    assert!(body.contains("\"method_not_allowed\""));
}

#[test]
fn bad_bodies_are_400_with_structured_errors() {
    let server = two_model_server(ServeConfig::default());
    let gateway = Gateway::start(
        Arc::clone(&server),
        GatewayConfig {
            tokens: tokens(),
            max_body: 512,
            ..GatewayConfig::default()
        },
    )
    .expect("start gateway");
    let addr = gateway.local_addr();

    // Unparseable JSON.
    let (code, _h, body) =
        http_post(&addr, "/v1/query", &auth("tok-sprinkler"), "{nope").expect("post");
    assert_eq!(code, 400, "{body}");
    let doc = JsonValue::parse(&body).expect("error body is json");
    assert_eq!(
        doc.get("error").and_then(JsonValue::as_str),
        Some("bad_json")
    );
    assert!(doc.get("message").and_then(JsonValue::as_str).is_some());

    // Well-formed JSON, wrong evidence arity for the model: the typed
    // admission reject surfaces as bad_shape.
    let (code, _h, body) = http_post(
        &addr,
        "/v1/query",
        &auth("tok-sprinkler"),
        r#"{"query": "marginal", "evidence": [null, null]}"#,
    )
    .expect("post");
    assert_eq!(code, 400, "{body}");
    assert!(body.contains("\"bad_shape\""), "{body}");

    // Over the gateway's max-body cap: 413 from the declared length.
    let huge = format!(
        r#"{{"query": "marginal", "evidence": [{}null]}}"#,
        "null, ".repeat(200)
    );
    let (code, _h, body) =
        http_post(&addr, "/v1/query", &auth("tok-sprinkler"), &huge).expect("post");
    assert_eq!(code, 413, "{body}");
    assert!(body.contains("\"body_too_large\""), "{body}");
}

#[test]
fn impossible_conditional_evidence_is_422() {
    // B is deterministically equal to A; observing A=0, B=1 has
    // probability zero, so the posterior over C does not exist.
    let mut builder = BayesNetBuilder::new();
    let a = builder.variable("A", 2);
    let b = builder.variable("B", 2);
    let c = builder.variable("C", 2);
    builder.cpt(a, [], [0.5, 0.5]).expect("cpt a");
    builder.cpt(b, [a], [1.0, 0.0, 0.0, 1.0]).expect("cpt b");
    builder.cpt(c, [a], [0.5, 0.5, 0.5, 0.5]).expect("cpt c");
    let net = builder.build().expect("build");
    let mut pool = CircuitPool::new(F64Arith::new());
    pool.register("det", &compile(&net).expect("compile"))
        .expect("register");
    let server = Arc::new(Server::start(pool, ServeConfig::default()));
    let gateway = Gateway::start(
        Arc::clone(&server),
        GatewayConfig {
            tokens: vec![("tok-det".to_string(), "det".to_string())],
            ..GatewayConfig::default()
        },
    )
    .expect("start gateway");
    let (code, _h, body) = http_post(
        &gateway.local_addr(),
        "/v1/query",
        &auth("tok-det"),
        r#"{"query": "conditional", "query_var": 2, "evidence": [0, 1, null]}"#,
    )
    .expect("post");
    assert_eq!(code, 422, "{body}");
    assert!(body.contains("\"impossible_evidence\""), "{body}");
    // The reference path agrees it is the typed lane error.
    let reference = server.pool().serve_one(&ServeRequest {
        model: "det".to_string(),
        evidence: evidence_from(&[Some(0), Some(1), None]),
        query: BatchQuery::Conditional {
            query_var: VarId::from_index(2),
        },
        priority: Priority::Interactive,
    });
    assert_eq!(reference, Err(ServeError::ImpossibleEvidence));
}

#[test]
fn quota_pressure_is_429_with_retry_after() {
    // Long coalescing wait + quota 2: two requests sit queued while the
    // third is rejected at admission with QuotaExceeded → 429. The wait
    // must outlast the 600ms fill window below but stay well under the
    // HTTP client's 2s read timeout, or the fillers time out waiting
    // for their own answers.
    let server = two_model_server(ServeConfig {
        max_batch: 1024,
        max_wait: Duration::from_millis(1200),
        workers: 1,
        tenant_quota: 2,
        ..ServeConfig::default()
    });
    let gateway = Gateway::start(
        Arc::clone(&server),
        GatewayConfig {
            tokens: tokens(),
            retry_after: Duration::from_secs(3),
            ..GatewayConfig::default()
        },
    )
    .expect("start gateway");
    let addr = gateway.local_addr();
    let body = r#"{"query": "marginal", "evidence": [null, null, null, null]}"#;
    let fillers: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                http_post(&addr, "/v1/query", &auth("tok-sprinkler"), body).expect("filler post")
            })
        })
        .collect();
    // Let both fillers reach admission and start coalescing.
    std::thread::sleep(Duration::from_millis(600));
    let (code, headers, text) =
        http_post(&addr, "/v1/query", &auth("tok-sprinkler"), body).expect("probe post");
    assert_eq!(code, 429, "{text}");
    assert!(text.contains("\"quota_exceeded\""), "{text}");
    let retry_after = headers
        .iter()
        .find(|(n, _)| n == "retry-after")
        .map(|(_, v)| v.clone());
    assert_eq!(retry_after.as_deref(), Some("3"));
    // The other tenant still gets served during sprinkler's saturation.
    let asia =
        r#"{"query": "marginal", "evidence": [null, null, null, null, null, null, null, null]}"#;
    let (code, _h, _b) = http_post(&addr, "/v1/query", &auth("tok-asia"), asia).expect("post");
    assert_eq!(code, 200);
    // The queued fillers resolve once the coalescing wait expires.
    for filler in fillers {
        let (code, _h, text) = filler.join().expect("filler thread");
        assert_eq!(code, 200, "{text}");
    }
    // And the metrics saw exactly one 429.
    let scrape = server.metrics().render_prometheus();
    let needle = format!(
        "{}{{status=\"429\"}} 1",
        metric_names::GATEWAY_REQUESTS_TOTAL
    );
    assert!(scrape.contains(&needle), "missing {needle:?} in scrape");
}

#[test]
fn statuses_are_counted_and_latency_observed() {
    let server = two_model_server(ServeConfig::default());
    let gateway = Gateway::start(
        Arc::clone(&server),
        GatewayConfig {
            tokens: tokens(),
            ..GatewayConfig::default()
        },
    )
    .expect("start gateway");
    let addr = gateway.local_addr();
    let good = r#"{"query": "marginal", "evidence": [null, null, null, null]}"#;
    for _ in 0..3 {
        let (code, _h, _b) =
            http_post(&addr, "/v1/query", &auth("tok-sprinkler"), good).expect("post");
        assert_eq!(code, 200);
    }
    let (code, _h, _b) = http_post(&addr, "/v1/query", &[], good).expect("post");
    assert_eq!(code, 401);
    let (code, _h, _b) =
        http_post(&addr, "/v1/query", &auth("tok-sprinkler"), "{nope").expect("post");
    assert_eq!(code, 400);

    let scrape = server.metrics().render_prometheus();
    for needle in [
        format!(
            "{}{{status=\"200\"}} 3",
            metric_names::GATEWAY_REQUESTS_TOTAL
        ),
        format!(
            "{}{{status=\"401\"}} 1",
            metric_names::GATEWAY_REQUESTS_TOTAL
        ),
        format!(
            "{}{{status=\"400\"}} 1",
            metric_names::GATEWAY_REQUESTS_TOTAL
        ),
        format!("{}_count 5", metric_names::GATEWAY_BODY_BYTES),
        format!("{}_count 5", metric_names::GATEWAY_HANDLER_US),
    ] {
        assert!(scrape.contains(&needle), "missing {needle:?} in scrape");
    }
}

#[test]
fn stalled_connection_does_not_block_other_queries() {
    use std::io::Write;
    let server = two_model_server(ServeConfig::default());
    let gateway = Gateway::start(
        Arc::clone(&server),
        GatewayConfig {
            tokens: tokens(),
            http_workers: 2,
            ..GatewayConfig::default()
        },
    )
    .expect("start gateway");
    let addr = gateway.local_addr();
    let mut stalled = std::net::TcpStream::connect(addr).expect("connect");
    stalled.write_all(b"POST /v1/qu").expect("partial write");
    std::thread::sleep(Duration::from_millis(50));
    let started = Instant::now();
    let (code, _h, _b) = http_post(
        &addr,
        "/v1/query",
        &auth("tok-sprinkler"),
        r#"{"query": "marginal", "evidence": [null, null, null, null]}"#,
    )
    .expect("post while stalled");
    assert_eq!(code, 200);
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "query took {:?} behind a stalled connection",
        started.elapsed()
    );
    drop(stalled);
}

#[test]
fn error_status_is_connected_to_the_public_error_type() {
    // The mapping itself is pinned in unit tests; here just assert the
    // public re-export is callable from outside the crate.
    assert_eq!(error_status(&ServeError::ShutDown), (503, "shutting_down"));
}
