//! Property tests for the serving layer: answers coalesced by the
//! admission queue are bit-identical to serving each request alone —
//! per model, per query kind, per arithmetic, and under **every QoS
//! policy combination** (per-tenant quotas, priority lanes, adaptive
//! max_wait, and the exact answer cache). Policy knobs may reorder,
//! reject or memoize work, never change an answer. Plus two
//! deterministic checks: a saturating Interactive tenant cannot delay a
//! Batch group past the aging bound, and a mid-trace hot swap
//! ([`Server::reload`]) strands no ticket while cutting new admissions
//! over to the new tape version.

use std::time::{Duration, Instant};

use proptest::prelude::*;

use problp_ac::compile;
use problp_bayes::{networks, BatchQuery, Evidence, VarId};
use problp_engine::{
    lane_answer_eq, CircuitPool, KernelKind, KernelSet, Priority, ServeConfig, ServeError,
    ServeRequest, ServeResponse, Server,
};
use problp_num::{F64Arith, FixedArith, FixedFormat};

/// Builds evidence for `net` from per-variable picks (odd picks leave
/// the variable unobserved).
fn evidence_from_picks(net: &problp_bayes::BayesNet, picks: &[usize]) -> Evidence {
    let mut e = Evidence::empty(net.var_count());
    for (v, p) in picks.iter().enumerate().take(net.var_count()) {
        if p % 2 == 0 {
            let var = VarId::from_index(v);
            e.observe(var, (p / 2) % net.variable(var).arity());
        }
    }
    e
}

/// One trace entry: (model pick, query pick, priority pick, evidence
/// picks).
type TracePick = (usize, usize, usize, Vec<usize>);

/// The full policy surface the scheduler can be configured with:
/// batching, sharding, quotas, aging, the adaptive wait, and which
/// evaluator kernel the pool's engines dispatch to.
#[derive(Clone, Copy, Debug)]
struct PolicyPick {
    max_batch: usize,
    workers: usize,
    /// 0 = quota off (the strategy also generates tight quotas that
    /// reject most of a burst).
    tenant_quota: usize,
    aging_us: u64,
    adaptive_wait: bool,
    /// 0 = cache off; a tiny capacity (constant LRU churn) and a
    /// capacity larger than any trace are both generated. Cache hits
    /// must be indistinguishable from re-evaluation, bit for bit.
    cache_capacity: usize,
    /// Evaluator kernel for the pool's engines. The coalescing
    /// invariant must hold under every kernel (and `tests/kernels.rs`
    /// pins each kernel to the scalar walk, closing the loop).
    kernel: KernelKind,
}

/// The two fixed tenants plus per-request picks, under an arbitrary
/// QoS policy.
fn trace_strategy() -> impl Strategy<Value = (Vec<TracePick>, PolicyPick)> {
    (
        proptest::collection::vec(
            (
                0usize..2,
                0usize..3,
                0usize..2,
                proptest::collection::vec(0usize..12, 8),
            ),
            1..40,
        ),
        (
            (
                1usize..9, // max_batch
                1usize..4, // dispatcher workers
                0usize..3, // quota pick: 0 = off, else quota = pick * 5
                0u64..3,   // aging pick
            ),
            (
                any::<bool>(), // adaptive max_wait
                0usize..3,     // cache pick: off | churning | ample
                0usize..3,     // kernel pick: scalar | simd | fused
            ),
        )
            .prop_map(
                |((max_batch, workers, quota, aging), (adaptive_wait, cache, kernel))| PolicyPick {
                    max_batch,
                    workers,
                    tenant_quota: quota * 5,
                    aging_us: [200, 2_000, 50_000][aging as usize],
                    adaptive_wait,
                    cache_capacity: [0, 3, 256][cache],
                    kernel: KernelKind::ALL[kernel],
                },
            ),
    )
}

/// Runs one trace through a server over `pool`'s arithmetic and checks
/// every coalesced answer against the request served alone. Quota
/// rejections are a policy outcome, not an answer: they must be typed
/// [`ServeError::QuotaExceeded`] and only occur when a quota is set.
fn check_trace<A>(ctx: A, trace: &[TracePick], policy: PolicyPick) -> Result<(), TestCaseError>
where
    A: KernelSet + Clone + Send + Sync + 'static,
    A::Value: Clone + PartialEq + Send + Sync + std::fmt::Debug + 'static,
{
    let tenants = [
        ("sprinkler", networks::sprinkler()),
        ("asia", networks::asia()),
    ];
    let mut pool = CircuitPool::new(ctx).with_kernel(policy.kernel);
    for (name, net) in &tenants {
        pool.register(name, &compile(net).unwrap()).unwrap();
    }
    let server = Server::start(
        pool,
        ServeConfig {
            max_batch: policy.max_batch,
            max_wait: Duration::from_micros(100),
            workers: policy.workers,
            tenant_quota: policy.tenant_quota,
            priority_aging: Duration::from_micros(policy.aging_us),
            adaptive_wait: policy.adaptive_wait,
            cache_capacity: policy.cache_capacity,
        },
    );
    let requests: Vec<ServeRequest> = trace
        .iter()
        .map(|(m, q, p, picks)| {
            let (name, net) = &tenants[m % 2];
            let query = match q % 3 {
                0 => BatchQuery::Marginal,
                1 => BatchQuery::Mpe,
                _ => BatchQuery::Conditional {
                    query_var: net.roots()[0],
                },
            };
            ServeRequest {
                model: name.to_string(),
                evidence: evidence_from_picks(net, picks),
                query,
                priority: if p % 2 == 0 {
                    Priority::Interactive
                } else {
                    Priority::Batch
                },
            }
        })
        .collect();
    let served = server.serve_all(&requests);
    for (i, (req, got)) in requests.iter().zip(&served).enumerate() {
        // A quota rejection is the only admissible policy-induced
        // "non-answer", and only with a quota configured.
        if let Err(ServeError::QuotaExceeded { model, quota }) = got {
            prop_assert!(policy.tenant_quota > 0, "quota reject without a quota");
            prop_assert_eq!(*quota, policy.tenant_quota);
            prop_assert_eq!(model, &req.model);
            continue;
        }
        let alone = server.pool().serve_one(req);
        // Payload equality — flags are batch-scope by design, so they
        // are excluded from the coalescing invariant.
        prop_assert!(
            lane_answer_eq(&alone, got),
            "request {} ({:?}): {:?} vs {:?}",
            i,
            req.query,
            alone,
            got
        );
        // Bit-identical, not just PartialEq-equal: pin the f64 payloads.
        if let (
            Ok(ServeResponse::Conditional { posteriors: a, .. }),
            Ok(ServeResponse::Conditional { posteriors: b, .. }),
        ) = (&alone, got)
        {
            for (x, y) in a.iter().zip(b) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
    // The cache books must balance: with the cache on, every request
    // that reached the queue-or-cache stage did exactly one lookup
    // (quota rejects happen after the lookup); with it off, the
    // counters never move.
    let stats = server.stats();
    if policy.cache_capacity > 0 {
        prop_assert_eq!(stats.cache_hits + stats.cache_misses, trace.len() as u64);
    } else {
        prop_assert_eq!(stats.cache_hits + stats.cache_misses, 0);
    }
    server.shutdown();
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Coalesced f64 serving is bit-identical to per-request serving,
    /// for every model, query kind, priority mix and QoS policy
    /// (quota × aging × adaptive-wait × batching × shard count).
    #[test]
    fn coalesced_answers_match_per_request_answers_f64(
        (trace, policy) in trace_strategy()
    ) {
        check_trace(F64Arith::new(), &trace, policy)?;
    }

    /// The same under low-precision fixed point: coalescing and the
    /// scheduling policy commute with the arithmetic, bit for bit.
    #[test]
    fn coalesced_answers_match_per_request_answers_fixed(
        (trace, policy) in trace_strategy()
    ) {
        let format = FixedFormat::new(1, 10).unwrap();
        check_trace(FixedArith::new(format), &trace, policy)?;
    }
}

/// Deterministic anti-starvation check: one dispatcher, an Interactive
/// tenant kept continuously full by a feeder thread, and a single Batch
/// request submitted mid-flood. Without the aging promotion the Batch
/// group would only dispatch after the flood ends; with it, the request
/// must complete within (roughly) the aging bound while the flood is
/// still running.
#[test]
fn saturating_interactive_tenant_cannot_starve_batch_past_aging() {
    let mut pool = CircuitPool::new(F64Arith::new());
    pool.register("sprinkler", &compile(&networks::sprinkler()).unwrap())
        .unwrap();
    pool.register("asia", &compile(&networks::asia()).unwrap())
        .unwrap();
    let server = std::sync::Arc::new(Server::start(
        pool,
        ServeConfig {
            max_batch: 4,
            max_wait: Duration::from_micros(100),
            workers: 1,
            // The quota keeps the flood's queue depth bounded (the
            // feeder outruns the single dispatcher by orders of
            // magnitude) while leaving the Interactive lane
            // continuously full — the exact starvation scenario.
            tenant_quota: 64,
            priority_aging: Duration::from_millis(5),
            ..ServeConfig::default()
        },
    ));

    // Feeder: saturate the Interactive lane of "sprinkler" for the
    // whole test window (tickets deliberately dropped).
    let flood_end = Instant::now() + Duration::from_millis(800);
    let feeder = {
        let server = std::sync::Arc::clone(&server);
        std::thread::spawn(move || {
            let evidence = Evidence::empty(4);
            while Instant::now() < flood_end {
                let _ = server.submit(ServeRequest {
                    model: "sprinkler".to_string(),
                    evidence: evidence.clone(),
                    query: BatchQuery::Marginal,
                    priority: Priority::Interactive,
                });
            }
        })
    };

    // Let the flood establish itself, then submit the one Batch request.
    std::thread::sleep(Duration::from_millis(50));
    let submitted = Instant::now();
    let ticket = server
        .submit(ServeRequest {
            model: "asia".to_string(),
            evidence: Evidence::empty(8),
            query: BatchQuery::Marginal,
            priority: Priority::Batch,
        })
        .unwrap();
    let (result, completed) = ticket.wait_deadline_timed(Duration::from_secs(10));
    assert!(
        matches!(result, Ok(ServeResponse::Marginal { .. })),
        "batch request failed: {result:?}"
    );
    // Served while the flood was still running — not after it drained —
    // and within a generous multiple of the 5ms aging bound (CI-safe
    // margin; without aging this is the full 750ms flood + drain).
    assert!(
        completed < flood_end,
        "batch request only completed after the flood ended"
    );
    let delay = completed.saturating_duration_since(submitted);
    assert!(
        delay < Duration::from_millis(400),
        "batch request delayed {delay:?}, aging bound is 5ms"
    );
    feeder.join().unwrap();
}

/// A 3-variable net whose CPTs are parameterized by `p`: two values of
/// `p` give two tape versions with genuinely different answers.
fn swap_variant(p: f64) -> problp_bayes::BayesNet {
    let mut b = problp_bayes::BayesNetBuilder::new();
    let a = b.variable("A", 2);
    b.cpt(a, [], [p, 1.0 - p]).unwrap();
    let m = b.variable("B", 3);
    b.cpt(m, [a], [0.2, 0.3, 0.5, p, (1.0 - p) / 2.0, (1.0 - p) / 2.0])
        .unwrap();
    let c = b.variable("C", 2);
    b.cpt(c, [m], [0.1, 0.9, 0.5, 0.5, 0.8, 0.2]).unwrap();
    b.build().unwrap()
}

/// Hot swap under load: a trace straddling a [`Server::reload`] strands
/// no ticket, requests admitted before the swap finish on the old tape,
/// and requests admitted after it answer exactly like a fresh pool
/// compiled from the new graph — with a bystander model unaffected.
#[test]
fn hot_swap_under_load_strands_no_ticket_and_cuts_over() {
    let net_v1 = swap_variant(0.3);
    let net_v2 = swap_variant(0.6);
    let ac_v1 = compile(&net_v1).unwrap();
    let ac_v2 = compile(&net_v2).unwrap();
    let mut pool = CircuitPool::new(F64Arith::new());
    pool.register("swap", &ac_v1).unwrap();
    pool.register("steady", &compile(&networks::asia()).unwrap())
        .unwrap();
    let server = Server::start(
        pool,
        ServeConfig {
            max_batch: 4,
            max_wait: Duration::from_micros(200),
            workers: 2,
            cache_capacity: 32,
            ..ServeConfig::default()
        },
    );
    let request = |i: usize, model: &str, net: &problp_bayes::BayesNet| ServeRequest {
        model: model.to_string(),
        evidence: evidence_from_picks(net, &[i, i / 2, i / 3, i % 5]),
        query: match i % 3 {
            0 => BatchQuery::Marginal,
            1 => BatchQuery::Mpe,
            _ => BatchQuery::Conditional {
                query_var: net.roots()[0],
            },
        },
        priority: Priority::Interactive,
    };
    let asia = networks::asia();
    let mk_phase = |base: usize| -> Vec<ServeRequest> {
        (0..40)
            .map(|i| {
                if i % 4 == 3 {
                    request(base + i, "steady", &asia)
                } else {
                    request(base + i, "swap", &net_v1)
                }
            })
            .collect()
    };
    // Phase 1 is admitted against version 1 and left in flight while
    // the reload lands: nothing is drained before the cut-over.
    let pre_requests = mk_phase(0);
    let pre_tickets: Vec<_> = pre_requests
        .iter()
        .map(|r| server.submit(r.clone()).unwrap())
        .collect();
    assert_eq!(server.reload("swap", &ac_v2).unwrap(), 2);
    let post_requests = mk_phase(1);
    let post_tickets: Vec<_> = post_requests
        .iter()
        .map(|r| server.submit(r.clone()).unwrap())
        .collect();
    // Every ticket resolves (deadline, not wait: a stranded ticket must
    // fail the test, not hang it).
    let drain = |tickets: Vec<problp_engine::Ticket<f64>>| -> Vec<_> {
        tickets
            .into_iter()
            .map(|t| {
                let got = t.wait_deadline(Duration::from_secs(30));
                assert!(
                    !matches!(
                        got,
                        Err(ServeError::Timeout { .. } | ServeError::Disconnected)
                    ),
                    "stranded ticket across the reload: {got:?}"
                );
                got
            })
            .collect()
    };
    let pre_answers = drain(pre_tickets);
    let post_answers = drain(post_tickets);
    // References: single-version pools compiled fresh from each graph.
    let mut ref_v1 = CircuitPool::new(F64Arith::new());
    ref_v1.register("swap", &ac_v1).unwrap();
    ref_v1.register("steady", &compile(&asia).unwrap()).unwrap();
    let mut ref_v2 = CircuitPool::new(F64Arith::new());
    ref_v2.register("swap", &ac_v2).unwrap();
    ref_v2.register("steady", &compile(&asia).unwrap()).unwrap();
    for (req, got) in pre_requests.iter().zip(&pre_answers) {
        let want = ref_v1.serve_one(req);
        assert!(
            lane_answer_eq(&want, got),
            "pre-reload {req:?}: {want:?} vs {got:?}"
        );
    }
    for (req, got) in post_requests.iter().zip(&post_answers) {
        let want = ref_v2.serve_one(req);
        assert!(
            lane_answer_eq(&want, got),
            "post-reload {req:?}: {want:?} vs {got:?}"
        );
    }
    // The swap is observable: at least one identical swap-model request
    // answers differently across the versions (the CPTs really differ).
    let probe = request(0, "swap", &net_v1);
    assert!(!lane_answer_eq(
        &ref_v1.serve_one(&probe),
        &ref_v2.serve_one(&probe)
    ));
    assert_eq!(
        server.stats().model_versions,
        vec![("steady".to_string(), 1), ("swap".to_string(), 2)]
    );
    server.shutdown();
}
