//! Property tests for the serving layer: answers coalesced by the
//! admission queue are bit-identical to serving each request alone —
//! per model, per query kind, and per arithmetic — under arbitrary
//! batching policies.

use std::time::Duration;

use proptest::prelude::*;

use problp_ac::compile;
use problp_bayes::{networks, BatchQuery, Evidence, VarId};
use problp_engine::{
    lane_answer_eq, CircuitPool, ServeConfig, ServeRequest, ServeResponse, Server,
};
use problp_num::{Arith, F64Arith, FixedArith, FixedFormat};

/// Builds evidence for `net` from per-variable picks (odd picks leave
/// the variable unobserved).
fn evidence_from_picks(net: &problp_bayes::BayesNet, picks: &[usize]) -> Evidence {
    let mut e = Evidence::empty(net.var_count());
    for (v, p) in picks.iter().enumerate().take(net.var_count()) {
        if p % 2 == 0 {
            let var = VarId::from_index(v);
            e.observe(var, (p / 2) % net.variable(var).arity());
        }
    }
    e
}

/// One trace entry: (model pick, query pick, evidence picks).
type TracePick = (usize, usize, Vec<usize>);

/// The two fixed tenants plus per-request picks, and a batching policy
/// (max_batch, dispatcher workers).
fn trace_strategy() -> impl Strategy<Value = (Vec<TracePick>, usize, usize)> {
    (
        proptest::collection::vec(
            (
                0usize..2,
                0usize..3,
                proptest::collection::vec(0usize..12, 8),
            ),
            1..40,
        ),
        1usize..9, // max_batch
        1usize..4, // dispatcher workers
    )
}

/// Runs one trace through a server over `pool`'s arithmetic and checks
/// every coalesced answer against the request served alone.
fn check_trace<A>(
    ctx: A,
    trace: &[TracePick],
    max_batch: usize,
    workers: usize,
) -> Result<(), TestCaseError>
where
    A: Arith + Clone + Send + Sync + 'static,
    A::Value: Clone + PartialEq + Send + Sync + std::fmt::Debug + 'static,
{
    let tenants = [
        ("sprinkler", networks::sprinkler()),
        ("asia", networks::asia()),
    ];
    let mut pool = CircuitPool::new(ctx);
    for (name, net) in &tenants {
        pool.register(name, &compile(net).unwrap()).unwrap();
    }
    let server = Server::start(
        pool,
        ServeConfig {
            max_batch,
            max_wait: Duration::from_micros(100),
            workers,
        },
    );
    let requests: Vec<ServeRequest> = trace
        .iter()
        .map(|(m, q, picks)| {
            let (name, net) = &tenants[m % 2];
            let query = match q % 3 {
                0 => BatchQuery::Marginal,
                1 => BatchQuery::Mpe,
                _ => BatchQuery::Conditional {
                    query_var: net.roots()[0],
                },
            };
            ServeRequest {
                model: name.to_string(),
                evidence: evidence_from_picks(net, picks),
                query,
            }
        })
        .collect();
    let served = server.serve_all(&requests);
    for (i, (req, got)) in requests.iter().zip(&served).enumerate() {
        let alone = server.pool().serve_one(req);
        // Payload equality — flags are batch-scope by design, so they
        // are excluded from the coalescing invariant.
        prop_assert!(
            lane_answer_eq(&alone, got),
            "request {} ({:?}): {:?} vs {:?}",
            i,
            req.query,
            alone,
            got
        );
        // Bit-identical, not just PartialEq-equal: pin the f64 payloads.
        if let (
            Ok(ServeResponse::Conditional { posteriors: a, .. }),
            Ok(ServeResponse::Conditional { posteriors: b, .. }),
        ) = (&alone, got)
        {
            for (x, y) in a.iter().zip(b) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
    server.shutdown();
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Coalesced f64 serving is bit-identical to per-request serving,
    /// for every model, query kind, batching policy and shard count.
    #[test]
    fn coalesced_answers_match_per_request_answers_f64(
        (trace, max_batch, workers) in trace_strategy()
    ) {
        check_trace(F64Arith::new(), &trace, max_batch, workers)?;
    }

    /// The same under low-precision fixed point: coalescing commutes
    /// with the arithmetic, bit for bit.
    #[test]
    fn coalesced_answers_match_per_request_answers_fixed(
        (trace, max_batch, workers) in trace_strategy()
    ) {
        let format = FixedFormat::new(1, 10).unwrap();
        check_trace(FixedArith::new(format), &trace, max_batch, workers)?;
    }
}
