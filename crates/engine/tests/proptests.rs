//! Property tests for the execution engine: tape evaluation (compact
//! and full-values modes) is bit-identical to the scalar tree-walk,
//! batch results are independent of how lanes are sharded, and the
//! batched MPE/conditional serving paths agree with the scalar oracles.

use proptest::prelude::*;

use problp_ac::{compile, transform::binarize, Semiring};
use problp_bayes::{networks, Evidence, EvidenceBatch, VarId};
use problp_engine::{Engine, Tape};
use problp_num::{Arith, F64Arith, FixedArith, FixedFormat, FloatArith, FloatFormat};

/// A random network's seed plus per-variable observation picks.
fn net_and_picks() -> impl Strategy<Value = (u64, Vec<usize>)> {
    (0u64..500, proptest::collection::vec(0usize..100, 7))
}

/// Builds evidence observing roughly half the variables, like the
/// cross-crate suite does.
fn evidence_from_picks(net: &problp_bayes::BayesNet, picks: &[usize]) -> Evidence {
    let mut e = Evidence::empty(net.var_count());
    for (v, p) in picks.iter().enumerate().take(net.var_count()) {
        if p % 2 == 0 {
            let var = VarId::from_index(v);
            e.observe(var, p % net.variable(var).arity());
        }
    }
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline property: for every semiring, evaluating the compiled
    /// tape under `F64Arith` returns the root value of
    /// `AcGraph::evaluate_nodes` bit for bit — the `optimize` pass and
    /// the binary-chain lowering change no bits.
    #[test]
    fn tape_is_bit_identical_to_evaluate_nodes((seed, picks) in net_and_picks()) {
        let net = networks::random_network(seed, 7, 3, 3);
        let ac = compile(&net).unwrap();
        let e = evidence_from_picks(&net, &picks);
        for semiring in [Semiring::SumProduct, Semiring::MaxProduct, Semiring::MinProduct] {
            let mut ctx = F64Arith::new();
            let scalar = {
                let values = ac.evaluate_nodes(&mut ctx, &e, semiring).unwrap();
                values[ac.root().unwrap().index()]
            };
            let engine = Engine::from_graph(&ac, semiring, F64Arith::new()).unwrap();
            let (tape_value, _) = engine.evaluate_one(&e).unwrap();
            prop_assert_eq!(
                scalar.to_bits(),
                tape_value.to_bits(),
                "semiring {:?}: scalar {} vs tape {}",
                semiring, scalar, tape_value
            );
        }
    }

    /// The same holds on binarized circuits (the hardware form the
    /// pipeline measures on).
    #[test]
    fn tape_is_bit_identical_on_binarized_circuits((seed, picks) in net_and_picks()) {
        let net = networks::random_network(seed, 6, 2, 3);
        let ac = binarize(&compile(&net).unwrap()).unwrap();
        let e = evidence_from_picks(&net, &picks);
        let scalar = ac.evaluate(&e).unwrap();
        let engine = Engine::from_graph(&ac, Semiring::SumProduct, F64Arith::new()).unwrap();
        let (tape_value, _) = engine.evaluate_one(&e).unwrap();
        prop_assert_eq!(scalar.to_bits(), tape_value.to_bits());
    }

    /// Low-precision contexts run the identical operation sequence, so
    /// the tape matches the scalar walk there too (raw bit compare),
    /// for every semiring.
    #[test]
    fn tape_matches_scalar_walk_under_low_precision(
        (seed, picks) in net_and_picks(),
        frac in 6u32..20,
    ) {
        let net = networks::random_network(seed, 6, 2, 3);
        let ac = compile(&net).unwrap();
        let e = evidence_from_picks(&net, &picks);
        for semiring in [Semiring::SumProduct, Semiring::MaxProduct, Semiring::MinProduct] {
            let format = FixedFormat::new(1, frac).unwrap();
            let mut fx = FixedArith::new(format);
            let scalar = ac.evaluate_with(&mut fx, &e, semiring).unwrap();
            let scalar = fx.to_f64(&scalar);
            let engine = Engine::from_graph(&ac, semiring, FixedArith::new(format)).unwrap();
            let (v, _) = engine.evaluate_one(&e).unwrap();
            prop_assert_eq!(scalar.to_bits(), v.to_f64().to_bits(), "fixed, {:?}", semiring);

            let format = FloatFormat::new(8, frac).unwrap();
            let mut fl = FloatArith::new(format);
            let scalar = ac.evaluate_with(&mut fl, &e, semiring).unwrap();
            let scalar = fl.to_f64(&scalar);
            let engine = Engine::from_graph(&ac, semiring, FloatArith::new(format)).unwrap();
            let (v, _) = engine.evaluate_one(&e).unwrap();
            prop_assert_eq!(scalar.to_bits(), v.to_f64().to_bits(), "float, {:?}", semiring);
        }
    }

    /// Deterministic CPTs (Asia's OR gate) make `optimize` fold 0/1
    /// constants; those folds must change no bits in any arithmetic or
    /// semiring either.
    #[test]
    fn constant_folding_preserves_bits_on_deterministic_networks(
        picks in proptest::collection::vec(0usize..100, 8),
        frac in 6u32..20,
    ) {
        let net = networks::asia();
        let ac = compile(&net).unwrap();
        let e = evidence_from_picks(&net, &picks);
        for semiring in [Semiring::SumProduct, Semiring::MaxProduct, Semiring::MinProduct] {
            let mut ctx = F64Arith::new();
            let values = ac.evaluate_nodes(&mut ctx, &e, semiring).unwrap();
            let scalar = values[ac.root().unwrap().index()];
            let engine = Engine::from_graph(&ac, semiring, F64Arith::new()).unwrap();
            let (v, _) = engine.evaluate_one(&e).unwrap();
            prop_assert_eq!(scalar.to_bits(), v.to_bits(), "f64, {:?}", semiring);

            let format = FixedFormat::new(1, frac).unwrap();
            let mut fx = FixedArith::new(format);
            let scalar = ac.evaluate_with(&mut fx, &e, semiring).unwrap();
            let scalar = fx.to_f64(&scalar);
            let engine = Engine::from_graph(&ac, semiring, FixedArith::new(format)).unwrap();
            let (v, _) = engine.evaluate_one(&e).unwrap();
            prop_assert_eq!(scalar.to_bits(), v.to_f64().to_bits(), "fixed, {:?}", semiring);
        }
    }

    /// The full-values tape returns the value of *every* node
    /// bit-identically to `AcGraph::evaluate_nodes`, for every semiring
    /// and every arithmetic — the contract the engine-backed
    /// `AcAnalysis` in `problp-bounds` rests on.
    #[test]
    fn full_tape_node_values_match_evaluate_nodes(
        (seed, picks) in net_and_picks(),
        frac in 6u32..20,
    ) {
        let net = networks::random_network(seed, 7, 3, 3);
        let ac = compile(&net).unwrap();
        let e = evidence_from_picks(&net, &picks);
        for semiring in [Semiring::SumProduct, Semiring::MaxProduct, Semiring::MinProduct] {
            // Exact f64.
            let mut ctx = F64Arith::new();
            let scalar = ac.evaluate_nodes(&mut ctx, &e, semiring).unwrap();
            let engine = Engine::from_graph_full(&ac, semiring, F64Arith::new()).unwrap();
            let (tape, _) = engine.evaluate_nodes_one(&e).unwrap();
            prop_assert_eq!(scalar.len(), tape.len());
            for (i, (s, t)) in scalar.iter().zip(&tape).enumerate() {
                prop_assert_eq!(s.to_bits(), t.to_bits(), "f64 {:?} node {}", semiring, i);
            }

            // Fixed point.
            let format = FixedFormat::new(1, frac).unwrap();
            let mut fx = FixedArith::new(format);
            let scalar = ac.evaluate_nodes(&mut fx, &e, semiring).unwrap();
            let engine = Engine::from_graph_full(&ac, semiring, FixedArith::new(format)).unwrap();
            let (tape, _) = engine.evaluate_nodes_one(&e).unwrap();
            for (i, (s, t)) in scalar.iter().zip(&tape).enumerate() {
                prop_assert_eq!(
                    fx.to_f64(s).to_bits(),
                    fx.to_f64(t).to_bits(),
                    "fixed {:?} node {}", semiring, i
                );
            }

            // Floating point.
            let format = FloatFormat::new(8, frac).unwrap();
            let mut fl = FloatArith::new(format);
            let scalar = ac.evaluate_nodes(&mut fl, &e, semiring).unwrap();
            let engine = Engine::from_graph_full(&ac, semiring, FloatArith::new(format)).unwrap();
            let (tape, _) = engine.evaluate_nodes_one(&e).unwrap();
            for (i, (s, t)) in scalar.iter().zip(&tape).enumerate() {
                prop_assert_eq!(
                    fl.to_f64(s).to_bits(),
                    fl.to_f64(t).to_bits(),
                    "float {:?} node {}", semiring, i
                );
            }
        }
    }

    /// Full-values batch evaluation (root values) agrees with the
    /// compact tape, so the mode only changes register layout, never
    /// results.
    #[test]
    fn full_and_compact_tapes_agree_on_roots((seed, picks) in net_and_picks()) {
        let net = networks::random_network(seed, 6, 2, 3);
        let ac = compile(&net).unwrap();
        let e = evidence_from_picks(&net, &picks);
        let mut batch = EvidenceBatch::new(net.var_count());
        for _ in 0..3 {
            batch.push(&e);
        }
        for semiring in [Semiring::SumProduct, Semiring::MaxProduct, Semiring::MinProduct] {
            let compact = Engine::from_graph(&ac, semiring, F64Arith::new()).unwrap();
            let full = Engine::from_graph_full(&ac, semiring, F64Arith::new()).unwrap();
            let a = compact.evaluate_batch(&batch).unwrap();
            let b = full.evaluate_batch(&batch).unwrap();
            for (x, y) in a.values.iter().zip(&b.values) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "{:?}", semiring);
            }
        }
    }

    /// Batched MPE decoding matches the scalar sequential-conditioning
    /// decoder: identical max-product values (bit for bit) and decoded
    /// assignments that achieve them.
    #[test]
    fn mpe_batch_matches_the_scalar_decoder_on_random_networks(
        seed in 0u64..120,
        picks in proptest::collection::vec(0usize..100, 6),
    ) {
        let net = networks::random_network(seed, 6, 2, 3);
        let ac = compile(&net).unwrap();
        let e = evidence_from_picks(&net, &picks);
        let evidences = [Evidence::empty(net.var_count()), e];
        let batch = EvidenceBatch::from_evidences(net.var_count(), &evidences).unwrap();
        let engine = Engine::from_graph_full(&ac, Semiring::MaxProduct, F64Arith::new()).unwrap();
        let mpe = engine.mpe_batch(&batch).unwrap();
        for (lane, e) in evidences.iter().enumerate() {
            let (_, oracle_value) = ac.mpe_assignment(e).unwrap();
            prop_assert_eq!(mpe.values[lane].to_bits(), oracle_value.to_bits(), "lane {}", lane);
            let joint = net.joint_probability(&mpe.assignments[lane]);
            prop_assert!((joint - oracle_value).abs() <= 1e-12 * oracle_value.max(1.0));
            for (var, s) in e.iter() {
                prop_assert_eq!(mpe.assignments[lane][var.index()], s);
            }
        }
    }

    /// Batched conditional serving matches the scalar per-state
    /// evaluation bit for bit (the ratio is the same f64 division).
    #[test]
    fn conditional_batch_matches_scalar_ratios(
        seed in 0u64..120,
        picks in proptest::collection::vec(0usize..100, 6),
        qv in 0usize..6,
    ) {
        let net = networks::random_network(seed, 6, 2, 3);
        let ac = compile(&net).unwrap();
        let query_var = VarId::from_index(qv % net.var_count());
        let mut e = evidence_from_picks(&net, &picks);
        e.forget(query_var);
        let batch = EvidenceBatch::from_evidences(
            net.var_count(),
            std::slice::from_ref(&e),
        ).unwrap();
        let engine = Engine::from_graph(&ac, Semiring::SumProduct, F64Arith::new()).unwrap();
        let cond = engine.conditional_batch(&batch, query_var).unwrap();
        let den = ac.evaluate(&e).unwrap();
        for s in 0..net.variable(query_var).arity() {
            let mut with_q = e.clone();
            with_q.observe(query_var, s);
            let num = ac.evaluate(&with_q).unwrap();
            prop_assert_eq!(
                cond.posteriors[0][s].to_bits(),
                (num / den).to_bits(),
                "state {}", s
            );
        }
    }

    /// Sharded batch evaluation returns exactly the same values whatever
    /// the thread count or lane-block size.
    #[test]
    fn batches_are_independent_of_sharding(
        seed in 0u64..200,
        lanes in 1usize..300,
        threads in 1usize..9,
        chunk in 1usize..80,
    ) {
        let net = networks::random_network(seed, 6, 2, 3);
        let ac = compile(&net).unwrap();
        // Lanes cycle through every single-variable observation.
        let mut batch = EvidenceBatch::new(net.var_count());
        for i in 0..lanes {
            let mut e = Evidence::empty(net.var_count());
            let var = VarId::from_index(i % net.var_count());
            e.observe(var, i % net.variable(var).arity());
            batch.push(&e);
        }
        let engine = Engine::from_graph(&ac, Semiring::SumProduct, F64Arith::new()).unwrap();
        let reference = engine.clone().with_threads(1).with_chunk(256)
            .evaluate_batch(&batch).unwrap();
        let sharded = engine.with_threads(threads).with_chunk(chunk)
            .evaluate_batch(&batch).unwrap();
        prop_assert_eq!(&reference.values, &sharded.values);
        prop_assert_eq!(reference.flags, sharded.flags);
        // And every lane agrees with the single-evidence path.
        for lane in 0..lanes.min(5) {
            let (one, _) = engine_eval_one(&ac, &batch, lane);
            prop_assert_eq!(one.to_bits(), sharded.values[lane].to_bits());
        }
    }
}

/// Helper: evaluate one reconstructed lane through a fresh engine.
fn engine_eval_one(
    ac: &problp_ac::AcGraph,
    batch: &EvidenceBatch,
    lane: usize,
) -> (f64, problp_num::Flags) {
    let engine = Engine::from_graph(ac, Semiring::SumProduct, F64Arith::new()).unwrap();
    engine.evaluate_one(&batch.evidence(lane)).unwrap()
}

/// Batch results also agree with `measure`-style per-lane flag capture.
#[test]
fn flagged_and_plain_batches_agree() {
    let net = networks::alarm(7);
    let ac = compile(&net).unwrap();
    let tape = Tape::compile(&ac, Semiring::SumProduct).unwrap();
    let format = FixedFormat::new(1, 12).unwrap();
    let engine = Engine::new(tape, FixedArith::new(format));
    let mut batch = EvidenceBatch::new(net.var_count());
    for v in 0..net.var_count() {
        let mut e = Evidence::empty(net.var_count());
        e.observe(VarId::from_index(v), 0);
        batch.push(&e);
    }
    let plain = engine.evaluate_batch(&batch).unwrap();
    let flagged = engine.evaluate_batch_flagged(&batch).unwrap();
    assert_eq!(plain.values.len(), flagged.values.len());
    for (a, b) in plain.values.iter().zip(&flagged.values) {
        assert_eq!(a, b);
    }
    assert_eq!(plain.flags, flagged.flags);
    assert_eq!(flagged.lane_flags.len(), batch.lanes());
}
