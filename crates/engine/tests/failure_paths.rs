//! Failure-path hardening tests: worker panics surface as
//! [`EngineError::WorkerPanic`] instead of killing the process,
//! impossible conditional evidence is typed instead of leaking
//! `inf`/`NaN`, and empty-batch / zero-thread edges return cleanly.

use problp_ac::{compile, Semiring};
use problp_bayes::{networks, BatchQuery, Evidence, EvidenceBatch, VarId};
use problp_engine::{ConditionalLaneStatus, Engine, EngineError};
use problp_num::{Arith, F64Arith, Flags};

/// An arithmetic that panics on every multiplication: the deterministic
/// stand-in for "a worker crashed mid-sweep".
#[derive(Clone, Copy, Debug, Default)]
struct PanicArith;

impl Arith for PanicArith {
    type Value = f64;

    fn from_f64(&mut self, x: f64) -> f64 {
        x
    }
    fn to_f64(&self, v: &f64) -> f64 {
        *v
    }
    fn zero(&mut self) -> f64 {
        0.0
    }
    fn one(&mut self) -> f64 {
        1.0
    }
    fn add(&mut self, a: &f64, b: &f64) -> f64 {
        a + b
    }
    fn mul(&mut self, _a: &f64, _b: &f64) -> f64 {
        panic!("injected arithmetic fault")
    }
    fn max(&mut self, a: &f64, b: &f64) -> f64 {
        a.max(*b)
    }
    fn min(&mut self, a: &f64, b: &f64) -> f64 {
        a.min(*b)
    }
    fn flags(&self) -> Flags {
        Flags::new()
    }
    fn clear_flags(&mut self) {}
}

// Scalar-default kernels only: the fault must fire through the same
// per-instruction path the reference evaluator uses.
impl problp_engine::KernelSet for PanicArith {}

/// A batch big enough that `evaluate_batch` actually shards across
/// worker threads (MIN_LANES_PER_THREAD is 32).
fn wide_batch(net: &problp_bayes::BayesNet, lanes: usize) -> EvidenceBatch {
    let mut batch = EvidenceBatch::new(net.var_count());
    for _ in 0..lanes {
        batch.push(&Evidence::empty(net.var_count()));
    }
    batch
}

#[test]
fn evaluate_batch_surfaces_worker_panics_as_errors() {
    let net = networks::sprinkler();
    let ac = compile(&net).unwrap();
    let engine = Engine::from_graph(&ac, Semiring::SumProduct, PanicArith)
        .unwrap()
        .with_threads(2);
    let batch = wide_batch(&net, 64);
    match engine.evaluate_batch(&batch) {
        Err(EngineError::WorkerPanic { message }) => {
            assert!(message.contains("injected arithmetic fault"), "{message}");
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
    // The engine itself survives: a well-typed error, not a poisoned
    // process, and it keeps rejecting cleanly on the next call.
    assert!(matches!(
        engine.evaluate_batch(&batch),
        Err(EngineError::WorkerPanic { .. })
    ));
}

#[test]
fn evaluate_batch_surfaces_panics_on_the_single_shard_path_too() {
    let net = networks::sprinkler();
    let ac = compile(&net).unwrap();
    // One lane, one thread: the inline (no thread scope) fast path.
    let engine = Engine::from_graph(&ac, Semiring::SumProduct, PanicArith)
        .unwrap()
        .with_threads(1);
    let batch = wide_batch(&net, 1);
    match engine.evaluate_batch(&batch) {
        Err(EngineError::WorkerPanic { message }) => {
            assert!(message.contains("injected arithmetic fault"), "{message}");
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
}

/// The per-request reference path must be panic-proof end to end: a
/// panicking tenant yields a typed error from `serve_one`, never a
/// crash of the caller's thread (serve_one runs the engine inline, on
/// the single-shard path).
#[test]
fn serve_one_surfaces_worker_panics_as_errors() {
    use problp_engine::{CircuitPool, Priority, ServeError, ServeRequest};

    let net = networks::sprinkler();
    let ac = compile(&net).unwrap();
    let mut pool = CircuitPool::new(PanicArith);
    pool.register("bad", &ac).unwrap();
    let result = pool.serve_one(&ServeRequest {
        model: "bad".to_string(),
        evidence: Evidence::empty(net.var_count()),
        query: BatchQuery::Marginal,
        priority: Priority::Interactive,
    });
    match result {
        Err(ServeError::Engine(EngineError::WorkerPanic { message })) => {
            assert!(message.contains("injected arithmetic fault"), "{message}");
        }
        other => panic!("expected a WorkerPanic serve error, got {other:?}"),
    }
}

#[test]
fn evaluate_batch_flagged_surfaces_worker_panics_as_errors() {
    let net = networks::sprinkler();
    let ac = compile(&net).unwrap();
    let engine = Engine::from_graph(&ac, Semiring::SumProduct, PanicArith)
        .unwrap()
        .with_threads(2);
    let batch = wide_batch(&net, 64);
    assert!(matches!(
        engine.evaluate_batch_flagged(&batch),
        Err(EngineError::WorkerPanic { .. })
    ));
}

#[test]
fn mpe_batch_surfaces_worker_panics_as_errors() {
    let net = networks::sprinkler();
    let ac = compile(&net).unwrap();
    let engine = Engine::from_graph_full(&ac, Semiring::MaxProduct, PanicArith)
        .unwrap()
        .with_threads(2);
    // mpe_batch always dispatches its phase-1 sweeps to scoped workers,
    // so even a single lane exercises the join path.
    let batch = wide_batch(&net, 1);
    match engine.mpe_batch(&batch) {
        Err(EngineError::WorkerPanic { message }) => {
            assert!(message.contains("injected arithmetic fault"), "{message}");
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
}

#[test]
fn impossible_conditional_evidence_is_typed_not_nan_leaking() {
    let net = networks::sprinkler();
    let ac = compile(&net).unwrap();
    let engine = Engine::from_graph(&ac, Semiring::SumProduct, F64Arith::new()).unwrap();
    // Pr(Sprinkler=0, Rain=0, WetGrass=1) = 0: the wet-grass CPT row for
    // (no sprinkler, no rain) puts probability 1.0 on "dry".
    let mut impossible = Evidence::empty(net.var_count());
    impossible.observe(net.find("Sprinkler").unwrap(), 0);
    impossible.observe(net.find("Rain").unwrap(), 0);
    impossible.observe(net.find("WetGrass").unwrap(), 1);
    let possible = Evidence::empty(net.var_count());
    let batch = EvidenceBatch::from_evidences(net.var_count(), &[possible, impossible]).unwrap();
    let cond = engine
        .conditional_batch(&batch, net.find("Cloudy").unwrap())
        .unwrap();
    // The possible lane is untouched by its impossible neighbour.
    assert_eq!(cond.lane_status[0], ConditionalLaneStatus::Ok);
    assert!(cond.lane_status[0].is_ok());
    let sum: f64 = cond.posteriors[0].iter().sum();
    assert!((sum - 1.0).abs() < 1e-9);
    // The impossible lane is flagged, with deliberate NaNs instead of a
    // silent 0/0 or x/0.
    assert_eq!(
        cond.lane_status[1],
        ConditionalLaneStatus::ImpossibleEvidence
    );
    assert!(!cond.lane_status[1].is_ok());
    assert!(cond.posteriors[1].iter().all(|p| p.is_nan()));
}

#[test]
fn empty_batches_return_cleanly_on_every_entry_point() {
    let net = networks::sprinkler();
    let ac = compile(&net).unwrap();
    let empty = EvidenceBatch::new(net.var_count());

    let sum = Engine::from_graph(&ac, Semiring::SumProduct, F64Arith::new()).unwrap();
    let r = sum.evaluate_batch(&empty).unwrap();
    assert!(r.values.is_empty());
    let r = sum.evaluate_batch_flagged(&empty).unwrap();
    assert!(r.values.is_empty() && r.lane_flags.is_empty());
    let c = sum.conditional_batch(&empty, VarId::from_index(0)).unwrap();
    assert!(c.marginals.is_empty() && c.posteriors.is_empty() && c.lane_status.is_empty());
    assert_eq!(c.joints.len(), 2, "one (empty) joint batch per state");

    let max = Engine::from_graph_full(&ac, Semiring::MaxProduct, F64Arith::new()).unwrap();
    let m = max.mpe_batch(&empty).unwrap();
    assert!(m.assignments.is_empty() && m.values.is_empty());
}

#[test]
fn zero_threads_means_all_cores_and_never_divides_by_zero() {
    let net = networks::sprinkler();
    let ac = compile(&net).unwrap();
    let reference = Engine::from_graph(&ac, Semiring::SumProduct, F64Arith::new())
        .unwrap()
        .with_threads(1);
    let zero = Engine::from_graph(&ac, Semiring::SumProduct, F64Arith::new())
        .unwrap()
        .with_threads(0);
    let batch = wide_batch(&net, 100);
    let want = reference.evaluate_batch(&batch).unwrap();
    let got = zero.evaluate_batch(&batch).unwrap();
    assert_eq!(want.values, got.values);
    // And the empty-batch × zero-threads corner.
    let empty = EvidenceBatch::new(net.var_count());
    assert!(zero.evaluate_batch(&empty).unwrap().values.is_empty());
    assert!(zero
        .evaluate_batch_flagged(&empty)
        .unwrap()
        .values
        .is_empty());

    let mpe_zero = Engine::from_graph_full(&ac, Semiring::MaxProduct, F64Arith::new())
        .unwrap()
        .with_threads(0);
    assert!(mpe_zero.mpe_batch(&empty).unwrap().values.is_empty());
    let got = mpe_zero.mpe_batch(&batch).unwrap();
    assert_eq!(got.values.len(), batch.lanes());
}

#[test]
fn serving_layer_isolates_a_panicking_tenant() {
    use problp_engine::{CircuitPool, Priority, ServeConfig, ServeError, ServeRequest, Server};
    use std::time::Duration;

    // Every request to this tenant panics mid-evaluation; the point is
    // that each gets a typed error back and the server survives to
    // serve the next one.
    let net = networks::sprinkler();
    let ac = compile(&net).unwrap();
    let mut pool = CircuitPool::new(PanicArith);
    pool.register("bad", &ac).unwrap();
    let server = Server::start(
        pool,
        ServeConfig {
            max_batch: 4,
            max_wait: Duration::from_micros(100),
            workers: 2,
            ..ServeConfig::default()
        },
    );
    for _ in 0..3 {
        let ticket = server
            .submit(ServeRequest {
                model: "bad".to_string(),
                evidence: Evidence::empty(net.var_count()),
                query: BatchQuery::Marginal,
                priority: Priority::Interactive,
            })
            .unwrap();
        match ticket.wait() {
            Err(ServeError::Engine(EngineError::WorkerPanic { message })) => {
                assert!(message.contains("injected arithmetic fault"), "{message}");
            }
            other => panic!("expected a WorkerPanic serve error, got {other:?}"),
        }
    }
    server.shutdown();
}
