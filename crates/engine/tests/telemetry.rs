//! Serve-layer observability: the admission/dispatch counters a
//! [`Server`] exports must agree exactly with the typed results the API
//! returns — tests read [`Server::stats`] and the Prometheus rendering
//! instead of parsing any stdout.

use std::sync::Arc;
use std::time::Duration;

use problp_ac::compile;
use problp_bayes::{networks, BatchQuery, Evidence};
use problp_engine::{CircuitPool, Priority, ServeConfig, ServeError, ServeRequest, Server};
use problp_num::F64Arith;
use problp_telemetry::{metric_names, MetricsRegistry};

fn two_model_pool() -> CircuitPool<F64Arith> {
    let mut pool = CircuitPool::new(F64Arith::new());
    pool.register("sprinkler", &compile(&networks::sprinkler()).unwrap())
        .unwrap();
    pool.register("asia", &compile(&networks::asia()).unwrap())
        .unwrap();
    pool
}

fn request(model: &str, vars: usize, priority: Priority) -> ServeRequest {
    ServeRequest {
        model: model.to_string(),
        evidence: Evidence::empty(vars),
        query: BatchQuery::Marginal,
        priority,
    }
}

/// Every typed admission outcome increments exactly its counter: the
/// stats snapshot is the ground truth the sidecar exports.
#[test]
fn reject_counters_match_typed_serve_errors() {
    let server = Server::start(
        two_model_pool(),
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    );

    // Two good requests, one unknown model, one shape mismatch.
    let t1 = server.submit(request("sprinkler", 4, Priority::Interactive));
    let t2 = server.submit(request("asia", 8, Priority::Batch));
    assert!(t1.is_ok() && t2.is_ok());
    assert!(matches!(
        server.submit(request("nonesuch", 4, Priority::Interactive)),
        Err(ServeError::UnknownModel { .. })
    ));
    assert!(matches!(
        server.submit(request("sprinkler", 99, Priority::Interactive)),
        Err(ServeError::Engine(_))
    ));
    assert!(t1.unwrap().wait().is_ok());
    assert!(t2.unwrap().wait().is_ok());

    let stats = server.stats();
    assert_eq!(stats.requests, 4);
    assert_eq!(stats.admitted, 2);
    assert_eq!(stats.rejected_unknown_model, 1);
    assert_eq!(stats.rejected_bad_shape, 1);
    assert_eq!(stats.rejected_quota, 0);
    assert_eq!(stats.rejected_shutdown, 0);
    assert!(stats.dispatches >= 1, "{stats:?}");
    assert_eq!(stats.models, vec!["asia", "sprinkler"]);
    assert_eq!(stats.live_workers, 2);
    server.shutdown();
}

/// Quota rejects and the post-shutdown reject are typed and counted,
/// and the per-tenant lane books drain back to empty.
#[test]
fn quota_and_shutdown_rejects_are_counted() {
    let server = Server::start(
        two_model_pool(),
        ServeConfig {
            // One worker and a generous wait so the queue holds lanes
            // long enough for the quota to engage deterministically.
            workers: 1,
            max_batch: 64,
            max_wait: Duration::from_millis(50),
            tenant_quota: 3,
            ..ServeConfig::default()
        },
    );
    let mut tickets = Vec::new();
    let mut quota_rejects = 0u64;
    for _ in 0..8 {
        match server.submit(request("sprinkler", 4, Priority::Interactive)) {
            Ok(t) => tickets.push(t),
            Err(ServeError::QuotaExceeded { model, quota }) => {
                assert_eq!(model, "sprinkler");
                assert_eq!(quota, 3);
                quota_rejects += 1;
            }
            Err(other) => panic!("unexpected reject: {other}"),
        }
    }
    assert!(quota_rejects > 0, "quota never engaged");
    // While lanes are queued/in flight, the books show the tenant.
    let mid = server.stats();
    assert_eq!(mid.rejected_quota, quota_rejects);
    for t in tickets {
        assert!(t.wait().is_ok());
    }
    let drained = server.stats();
    assert!(
        drained.tenant_lanes.is_empty(),
        "lane books must drain: {:?}",
        drained.tenant_lanes
    );
    server.shutdown();
    // The server handle is consumed by shutdown; counters live on in a
    // fresh server for the shutdown-reject path.
    let server = Server::start(two_model_pool(), ServeConfig::default());
    let stats_before = server.stats();
    assert_eq!(stats_before.rejected_shutdown, 0);
    drop(server);
}

/// The caller-supplied registry receives the serve metrics, rendered in
/// Prometheus text form with the documented names.
#[test]
fn instrumented_server_renders_prometheus_series() {
    let registry = Arc::new(MetricsRegistry::new());
    let server = Server::start_instrumented(
        two_model_pool(),
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        Arc::clone(&registry),
    );
    let responses = server.serve_all(&[
        request("sprinkler", 4, Priority::Interactive),
        request("asia", 8, Priority::Batch),
        request("sprinkler", 4, Priority::Batch),
    ]);
    assert!(responses.iter().all(|r| r.is_ok()));

    let text = registry.render_prometheus();
    assert!(text.contains(&format!("{} 3", metric_names::SERVE_REQUESTS_TOTAL)));
    assert!(text.contains(&format!("{} 3", metric_names::SERVE_ADMITTED_TOTAL)));
    assert!(text.contains(metric_names::SERVE_QUEUE_DEPTH));
    assert!(text.contains(&format!("{}_high_water", metric_names::SERVE_QUEUE_DEPTH)));
    assert!(text.contains(&format!(
        "{}{{kind=\"quota\"}} 0",
        metric_names::SERVE_REJECTED_TOTAL
    )));
    assert!(text.contains(&format!(
        "{}_bucket{{query=\"marginal\",priority=\"interactive\",le=\"+Inf\"}}",
        metric_names::SERVE_SOJOURN_US
    )));
    // Three lanes dispatched → the engine counters moved.
    let instrs = registry.counter(metric_names::ENGINE_TAPE_INSTRS_TOTAL, "");
    assert!(instrs.get() > 0, "tape instruction counter never moved");
    assert_eq!(server.metrics().render_prometheus(), text);
    server.shutdown();
}

/// The health callback tracks dispatcher liveness across shutdown.
#[test]
fn health_fn_reflects_worker_liveness() {
    let server = Server::start(
        two_model_pool(),
        ServeConfig {
            workers: 3,
            ..ServeConfig::default()
        },
    );
    let health = server.health_fn();
    // Workers spawn asynchronously; liveness settles quickly.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while std::time::Instant::now() < deadline {
        if health().healthy {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let status = health();
    assert!(status.healthy);
    assert!(status
        .detail
        .iter()
        .any(|(k, v)| k == "models" && v == "asia,sprinkler"));
    server.shutdown();
    let status = health();
    assert!(!status.healthy, "shutdown server must report unhealthy");
    assert!(status
        .detail
        .iter()
        .any(|(k, v)| k == "workers_alive" && v == "0"));
}
