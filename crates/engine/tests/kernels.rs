//! Kernel-dispatch conformance tests: the SIMD lane-chunked kernels and
//! the fused superinstruction stream must be bit-identical to the scalar
//! tape walk — same values, same sticky flags, per lane — for every
//! semiring, every arithmetic, every chunk size and every remainder
//! lane count. The scalar walk stays the reference; these tests are the
//! license for the fast paths to exist.

use proptest::prelude::*;

use problp_ac::{compile, transform::binarize, Semiring};
use problp_bayes::{networks, Evidence, EvidenceBatch, VarId};
use problp_engine::{Engine, FusedInstr, FusedTape, KernelKind, Tape, LANE_WIDTH};
use problp_num::{F64Arith, FixedArith, FixedFormat, Flags};

const SEMIRINGS: [Semiring; 3] = [
    Semiring::SumProduct,
    Semiring::MaxProduct,
    Semiring::MinProduct,
];

/// A random network's seed plus per-variable observation picks.
fn net_and_picks() -> impl Strategy<Value = (u64, Vec<usize>)> {
    (0u64..500, proptest::collection::vec(0usize..100, 7))
}

/// Builds a batch whose lanes cycle through single-variable
/// observations plus an empty-evidence lane, so remainder lanes carry
/// distinct values (a clobbered or skipped tail lane cannot hide).
fn varied_batch(net: &problp_bayes::BayesNet, lanes: usize) -> EvidenceBatch {
    let mut batch = EvidenceBatch::new(net.var_count());
    for i in 0..lanes {
        let mut e = Evidence::empty(net.var_count());
        if i % 3 != 0 {
            let var = VarId::from_index(i % net.var_count());
            e.observe(var, i % net.variable(var).arity());
        }
        batch.push(&e);
    }
    batch
}

/// Structurally validates a fused stream against its source tape: every
/// register read must have been written earlier in the stream (or be a
/// pinned parameter register), the root register must be written, and
/// no instruction may read a register the fuser elided. This is the
/// "no clobbered registers" half of the fusion contract — value
/// identity is pinned separately by the evaluation properties.
fn assert_fused_stream_well_formed(tape: &Tape, fused: &FusedTape) {
    let mut written = vec![false; tape.num_regs()];
    for &p in tape.param_regs() {
        written[p as usize] = true;
    }
    let read = |reg: u32, written: &[bool], what: &str, idx: usize| {
        assert!(
            written[reg as usize],
            "fused instr {idx} reads {what} r{reg} before any write"
        );
    };
    for (idx, instr) in fused.instrs().iter().enumerate() {
        match *instr {
            FusedInstr::LoadIndicator { dst, slot } => {
                assert!((slot as usize) < tape.indicator_slots().count());
                written[dst as usize] = true;
            }
            FusedInstr::Bin { dst, lhs, rhs, .. } => {
                read(lhs, &written, "lhs", idx);
                read(rhs, &written, "rhs", idx);
                written[dst as usize] = true;
            }
            FusedInstr::MulAcc { dst, acc, a, b, .. } => {
                read(acc, &written, "acc", idx);
                read(a, &written, "a", idx);
                read(b, &written, "b", idx);
                written[dst as usize] = true;
            }
            FusedInstr::Reduce {
                dst, first, lo, hi, ..
            } => {
                read(first, &written, "first", idx);
                for &r in fused.operands(lo, hi) {
                    read(r, &written, "operand", idx);
                }
                written[dst as usize] = true;
            }
        }
    }
    assert!(
        written[tape.root_reg() as usize],
        "fused stream never writes the root register"
    );
    let stats = fused.stats();
    assert_eq!(stats.fused_instrs, fused.instrs().len());
    assert!(stats.fused_instrs <= stats.source_instrs);
}

/// Asserts that `flagged` per-lane flags OR together into the aggregate
/// — the sticky-flag contract `evaluate_batch_flagged` documents.
fn assert_lane_flags_consistent(flags: Flags, lane_flags: &[Flags]) {
    let mut merged = Flags::new();
    for &f in lane_flags {
        merged.merge(f);
    }
    assert_eq!(merged, flags, "aggregate flags != OR of per-lane flags");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The headline property: on random circuits, the SIMD and fused
    /// kernels return the scalar walk's f64 values bit for bit, with
    /// identical sticky flags, for every semiring.
    #[test]
    fn simd_and_fused_match_scalar_f64(
        (seed, _picks) in net_and_picks(),
        lanes in 1usize..130,
    ) {
        let net = networks::random_network(seed, 7, 3, 3);
        let ac = compile(&net).unwrap();
        let batch = varied_batch(&net, lanes);
        for semiring in SEMIRINGS {
            let engine = Engine::from_graph(&ac, semiring, F64Arith::new()).unwrap();
            let reference = engine.evaluate_batch(&batch).unwrap();
            for kernel in [KernelKind::Simd, KernelKind::Fused] {
                let fast = engine.clone().with_kernel(kernel);
                let got = fast.evaluate_batch(&batch).unwrap();
                prop_assert_eq!(got.flags, reference.flags);
                for (lane, (r, g)) in reference.values.iter().zip(&got.values).enumerate() {
                    prop_assert_eq!(
                        r.to_bits(), g.to_bits(),
                        "{:?} {:?} lane {}: scalar {} vs {}",
                        kernel, semiring, lane, r, g
                    );
                }
            }
        }
    }

    /// The same under fixed-point arithmetic, where the u128 fast path
    /// replaces the wide-integer reference multiply: values and
    /// *per-lane* sticky flags (inexact, overflow) are identical.
    #[test]
    fn simd_and_fused_match_scalar_fixed(
        (seed, _picks) in net_and_picks(),
        lanes in 1usize..80,
        frac in 6u32..20,
    ) {
        let net = networks::random_network(seed, 6, 2, 3);
        let ac = compile(&net).unwrap();
        let batch = varied_batch(&net, lanes);
        let format = FixedFormat::new(1, frac).unwrap();
        for semiring in SEMIRINGS {
            let engine = Engine::from_graph(&ac, semiring, FixedArith::new(format)).unwrap();
            let reference = engine.evaluate_batch_flagged(&batch).unwrap();
            for kernel in [KernelKind::Simd, KernelKind::Fused] {
                let fast = engine.clone().with_kernel(kernel);
                let got = fast.evaluate_batch_flagged(&batch).unwrap();
                prop_assert_eq!(got.flags, reference.flags, "{:?} {:?}", kernel, semiring);
                prop_assert_eq!(&got.lane_flags, &reference.lane_flags);
                for (lane, (r, g)) in reference.values.iter().zip(&got.values).enumerate() {
                    prop_assert_eq!(
                        r.to_f64().to_bits(), g.to_f64().to_bits(),
                        "{:?} {:?} lane {}", kernel, semiring, lane
                    );
                }
            }
        }
    }

    /// Fusion on full-values tapes must keep every register's final
    /// write (`MulAcc` is compact-only), and the fused stream stays
    /// structurally sound on both modes: no read of an unwritten or
    /// elided register, root always written.
    #[test]
    fn fused_streams_are_well_formed_and_full_mode_keeps_registers(
        seed in 0u64..500,
    ) {
        let net = networks::random_network(seed, 7, 3, 3);
        let ac = compile(&net).unwrap();
        for semiring in SEMIRINGS {
            let compact = Tape::compile(&ac, semiring).unwrap();
            let fused = compact.fuse();
            assert_fused_stream_well_formed(&compact, &fused);

            let full = Tape::compile_full(&ac, semiring).unwrap();
            let fused_full = full.fuse();
            assert_fused_stream_well_formed(&full, &fused_full);
            prop_assert_eq!(fused_full.stats().mul_accs, 0, "MulAcc must be compact-only");
        }
    }

    /// Results are independent of the lane-chunk size for every kernel:
    /// chunk 1 (every lane is a remainder), 3 (odd), 8 (exactly one
    /// SIMD chunk) and 1024 (whole batch in one chunk) agree bit for
    /// bit, flags included.
    #[test]
    fn chunk_size_never_changes_results(
        seed in 0u64..200,
        lanes in 1usize..100,
    ) {
        let net = networks::random_network(seed, 6, 2, 3);
        let ac = binarize(&compile(&net).unwrap()).unwrap();
        let batch = varied_batch(&net, lanes);
        let engine = Engine::from_graph(&ac, Semiring::SumProduct, F64Arith::new()).unwrap();
        let reference = engine.evaluate_batch(&batch).unwrap();
        for kernel in KernelKind::ALL {
            for chunk in [1usize, 3, LANE_WIDTH, 1024] {
                let e = engine.clone().with_kernel(kernel).with_chunk(chunk).with_threads(1);
                let got = e.evaluate_batch(&batch).unwrap();
                prop_assert_eq!(got.flags, reference.flags);
                for (r, g) in reference.values.iter().zip(&got.values) {
                    prop_assert_eq!(
                        r.to_bits(), g.to_bits(),
                        "{:?} chunk {}", kernel, chunk
                    );
                }
            }
        }
    }
}

/// Remainder-lane regression: lane counts that leave 1, `LANE_WIDTH`-1
/// or `LANE_WIDTH`+1 lanes (and primes that never divide the width)
/// must produce the same per-lane values *and* per-lane sticky flags as
/// the scalar walk — the scalar tail after the vector body covers
/// exactly the right lanes.
#[test]
fn remainder_lanes_match_scalar_values_and_flags() {
    let net = networks::alarm(7);
    let ac = compile(&net).unwrap();
    let format = FixedFormat::new(1, 10).unwrap();
    for lanes in [1, LANE_WIDTH - 1, LANE_WIDTH, LANE_WIDTH + 1, 13, 31, 97] {
        let batch = varied_batch(&net, lanes);
        for semiring in SEMIRINGS {
            // Fixed point: inexact is sticky per lane.
            let engine = Engine::from_graph(&ac, semiring, FixedArith::new(format)).unwrap();
            let reference = engine.evaluate_batch_flagged(&batch).unwrap();
            assert_lane_flags_consistent(reference.flags, &reference.lane_flags);
            for kernel in [KernelKind::Simd, KernelKind::Fused] {
                let fast = engine.clone().with_kernel(kernel);
                let got = fast.evaluate_batch_flagged(&batch).unwrap();
                assert_eq!(
                    got.lane_flags, reference.lane_flags,
                    "{kernel:?} {semiring:?}"
                );
                assert_eq!(got.flags, reference.flags);
                for (lane, (r, g)) in reference.values.iter().zip(&got.values).enumerate() {
                    assert_eq!(
                        r.to_f64().to_bits(),
                        g.to_f64().to_bits(),
                        "{kernel:?} {semiring:?} lanes {lanes} lane {lane}"
                    );
                }
            }
        }
    }
    // The low-precision format actually exercises the sticky path: at
    // 10 fractional bits the Alarm CPTs cannot all be exact.
    let engine = Engine::from_graph(&ac, Semiring::SumProduct, FixedArith::new(format))
        .unwrap()
        .with_kernel(KernelKind::Simd);
    let got = engine.evaluate_batch(&varied_batch(&net, 97)).unwrap();
    assert!(got.flags.inexact, "regression batch never went inexact");
}

/// The fused engine on a real circuit actually fuses something — the
/// throughput claim rests on superinstructions existing, so an
/// accidentally-empty pass must fail loudly here, not in the bench.
#[test]
fn fusion_finds_superinstructions_on_alarm() {
    let net = networks::alarm(7);
    let ac = compile(&net).unwrap();
    let engine = Engine::from_graph(&ac, Semiring::SumProduct, F64Arith::new())
        .unwrap()
        .with_kernel(KernelKind::Fused);
    let stats = engine.fuse_stats().expect("fused engine exposes stats");
    assert!(stats.mul_accs > 0, "no MulAcc fused on alarm: {stats}");
    assert!(stats.reduces > 0, "no Reduce fused on alarm: {stats}");
    assert!(stats.fused_instrs < stats.source_instrs);
    // Scalar and SIMD engines report no fused tape.
    let scalar = Engine::from_graph(&ac, Semiring::SumProduct, F64Arith::new()).unwrap();
    assert!(scalar.fused_tape().is_none());
    assert_eq!(scalar.kernel(), KernelKind::Scalar);
}

/// MPE and conditional serving agree across kernels: the scalar
/// traceback is the oracle, and the kernel only touches the batched
/// value sweeps feeding it.
#[test]
fn queries_agree_across_kernels() {
    let net = networks::asia();
    let ac = compile(&net).unwrap();
    let batch = varied_batch(&net, 11);
    let query_var = VarId::from_index(1);
    let mut cond_batch = EvidenceBatch::new(net.var_count());
    for lane in 0..batch.lanes() {
        let mut e = batch.evidence(lane);
        e.forget(query_var);
        cond_batch.push(&e);
    }

    let mpe_ref = Engine::from_graph_full(&ac, Semiring::MaxProduct, F64Arith::new())
        .unwrap()
        .mpe_batch(&batch)
        .unwrap();
    let cond_ref = Engine::from_graph(&ac, Semiring::SumProduct, F64Arith::new())
        .unwrap()
        .conditional_batch(&cond_batch, query_var)
        .unwrap();
    for kernel in [KernelKind::Simd, KernelKind::Fused] {
        let mpe = Engine::from_graph_full(&ac, Semiring::MaxProduct, F64Arith::new())
            .unwrap()
            .with_kernel(kernel)
            .mpe_batch(&batch)
            .unwrap();
        assert_eq!(mpe.assignments, mpe_ref.assignments, "{kernel:?}");
        for (a, b) in mpe.values.iter().zip(&mpe_ref.values) {
            assert_eq!(a.to_bits(), b.to_bits(), "{kernel:?}");
        }
        let cond = Engine::from_graph(&ac, Semiring::SumProduct, F64Arith::new())
            .unwrap()
            .with_kernel(kernel)
            .conditional_batch(&cond_batch, query_var)
            .unwrap();
        assert_eq!(cond.predictions, cond_ref.predictions, "{kernel:?}");
        for (p, q) in cond.posteriors.iter().zip(&cond_ref.posteriors) {
            for (a, b) in p.iter().zip(q) {
                assert_eq!(a.to_bits(), b.to_bits(), "{kernel:?}");
            }
        }
    }
}
