//! Mutation tests for the static tape verifier: each test corrupts a
//! freshly-compiled (and therefore provably well-formed) tape or fused
//! stream in one specific way and asserts the verifier rejects it with
//! the matching typed [`VerifyError`] — the red paths the builtin-network
//! sweep can never reach.

use problp_ac::{compile, transform::binarize, AcGraph, Semiring};
use problp_bayes::{networks, VarId};
use problp_engine::{CircuitPool, Engine, EngineError, FusedInstr, Instr, Tape, VerifyError};
use problp_num::F64Arith;

fn v(i: usize) -> VarId {
    VarId::from_index(i)
}

/// Σ_s λ_{a,s}·θ_s over a 4-state variable: enough states that the sum
/// lowers to a chain with continuations (head + 2 chain steps).
fn chained() -> AcGraph {
    let mut g = AcGraph::new(vec![4]);
    let mut prods = Vec::new();
    for s in 0..4 {
        let ind = g.indicator(v(0), s).unwrap();
        let p = g.param(0.1 + s as f64 * 0.2).unwrap();
        prods.push(g.product(vec![ind, p]).unwrap());
    }
    let root = g.sum(prods).unwrap();
    g.set_root(root);
    g
}

fn compact() -> Tape {
    Tape::compile(&chained(), Semiring::SumProduct).unwrap()
}

/// Index of the first chain continuation (`lhs == dst`) on the tape.
fn first_continuation(tape: &Tape) -> usize {
    tape.instrs()
        .iter()
        .position(|i| matches!(*i, Instr::Add { dst, lhs, .. } if dst == lhs))
        .expect("a 4-ary sum chain has continuations")
}

#[test]
fn mutation_use_before_def() {
    let mut tape = compact();
    // Swap the first load with the multiply consuming it: the multiply
    // now reads the indicator register before anything defines it.
    let instrs = tape.raw_instrs_mut();
    assert!(matches!(instrs[0], Instr::LoadIndicator { .. }));
    assert!(matches!(instrs[1], Instr::Mul { .. }));
    instrs.swap(0, 1);
    assert!(matches!(
        tape.verify(),
        Err(VerifyError::UseBeforeDef { instr: 0, .. })
    ));
}

#[test]
fn mutation_clobbered_live_register_via_aliased_rhs() {
    let mut tape = compact();
    let i = first_continuation(&tape);
    // Point the continuation's rhs at its own destination row: the fused
    // fold would observe a stale value, so the alias is a clobber.
    let instrs = tape.raw_instrs_mut();
    let Instr::Add { dst, rhs, .. } = &mut instrs[i] else {
        unreachable!("first_continuation found an Add")
    };
    *rhs = *dst;
    assert!(matches!(
        tape.verify(),
        Err(VerifyError::ClobberedLiveRegister { .. })
    ));
}

#[test]
fn mutation_clobbered_live_register_via_orphaned_continuation() {
    let mut tape = compact();
    let i = first_continuation(&tape);
    // Steal the chain head's destination: the continuation at `i` now
    // accumulates onto a register no immediately-preceding write defines
    // — exactly a live-value clobber between two nodes' chains.
    let spare = tape.num_regs() as u32;
    let instrs = tape.raw_instrs_mut();
    let Instr::Add { dst, .. } = &mut instrs[i - 1] else {
        panic!("a continuation is preceded by its chain head");
    };
    *dst = spare; // also out of the file, but the chain break is at `i`
    let Instr::Add { dst, lhs, .. } = instrs[i] else {
        unreachable!()
    };
    assert_eq!(dst, lhs, "still shaped like a continuation");
    assert!(matches!(
        tape.verify(),
        Err(VerifyError::RegisterOutOfBounds { .. })
            | Err(VerifyError::ClobberedLiveRegister { .. })
    ));
}

#[test]
fn mutation_param_register_write() {
    let mut tape = compact();
    let param_reg = tape.param_regs()[0];
    let instrs = tape.raw_instrs_mut();
    let Instr::Mul { dst, .. } = &mut instrs[1] else {
        panic!("instr 1 is the first product");
    };
    *dst = param_reg;
    assert!(matches!(
        tape.verify(),
        Err(VerifyError::ParamRegisterWrite { instr: 1, .. })
    ));
}

#[test]
fn mutation_register_out_of_bounds() {
    let mut tape = compact();
    let oob = tape.num_regs() as u32 + 10;
    let instrs = tape.raw_instrs_mut();
    let Instr::Mul { rhs, .. } = &mut instrs[1] else {
        panic!("instr 1 is the first product");
    };
    *rhs = oob;
    assert_eq!(
        tape.verify(),
        Err(VerifyError::RegisterOutOfBounds { instr: 1, reg: oob })
    );
}

#[test]
fn mutation_slot_out_of_bounds() {
    let mut tape = compact();
    let instrs = tape.raw_instrs_mut();
    let Instr::LoadIndicator { slot, .. } = &mut instrs[0] else {
        panic!("instr 0 is a load");
    };
    *slot = 999;
    assert_eq!(
        tape.verify(),
        Err(VerifyError::SlotOutOfBounds {
            instr: 0,
            slot: 999
        })
    );
}

#[test]
fn mutation_unreachable_instr() {
    let mut tape = compact();
    let root = tape.root_reg();
    let spare = tape.num_regs() as u32 - 1;
    // An extra product after the root write that nothing consumes. (The
    // root register itself keeps its chain-head shape, so only the dead
    // scan can notice.)
    assert_ne!(spare, root, "the last allocated scratch is not the root");
    tape.raw_instrs_mut().push(Instr::Mul {
        dst: spare,
        lhs: root,
        rhs: root,
    });
    let last = tape.instrs().len() - 1;
    assert_eq!(
        tape.verify(),
        Err(VerifyError::UnreachableInstr { instr: last })
    );
}

#[test]
fn mutation_root_undefined() {
    let mut tape = compact();
    tape.raw_instrs_mut().clear();
    assert!(matches!(
        tape.verify(),
        Err(VerifyError::RootUndefined { .. })
    ));
}

#[test]
fn mutation_full_mode_elision() {
    let mut g = AcGraph::new(vec![4, 2]);
    let mut prods = Vec::new();
    for s in 0..4 {
        let ind = g.indicator(v(0), s).unwrap();
        let p = g.param(0.1 + s as f64 * 0.2).unwrap();
        prods.push(g.product(vec![ind, p]).unwrap());
    }
    let root = g.sum(prods).unwrap();
    g.set_root(root);
    // A dead indicator over the second variable: kept by the full-values
    // mode, consumed by nobody.
    let _ = g.indicator(v(1), 0).unwrap();
    let mut tape = Tape::compile_full(&g, Semiring::SumProduct).unwrap();
    let dead_load = tape
        .instrs()
        .iter()
        .rposition(|i| matches!(i, Instr::LoadIndicator { .. }))
        .unwrap();
    tape.raw_instrs_mut().remove(dead_load);
    assert!(matches!(
        tape.verify(),
        Err(VerifyError::FullModeElision { .. })
    ));
}

#[test]
fn mutation_side_table_out_of_bounds() {
    let tape = compact();
    let mut fused = tape.fuse();
    let table_len = {
        let instrs = fused.raw_instrs_mut();
        let i = instrs
            .iter()
            .position(|i| matches!(i, FusedInstr::Reduce { .. }))
            .expect("the sum chain collapses to a Reduce");
        let FusedInstr::Reduce { hi, .. } = &mut instrs[i] else {
            unreachable!()
        };
        *hi += 1000;
        i
    };
    assert!(matches!(
        tape.verify_fused(&fused),
        Err(VerifyError::SideTableOutOfBounds { instr, .. }) if instr == table_len
    ));
}

#[test]
fn mutation_reordered_reduce_operands() {
    let tape = compact();
    let mut fused = tape.fuse();
    // Same operand multiset, different fold order: bitwise results change
    // for non-associative arithmetic, and the symbolic equivalence check
    // must refuse it.
    let ops = fused.raw_operands_mut();
    assert!(ops.len() >= 2, "the 4-ary chain leaves reduce operands");
    ops.swap(0, 1);
    assert!(matches!(
        tape.verify_fused(&fused),
        Err(VerifyError::FusedStreamDivergence { .. })
    ));
}

/// The bugfix sweep: every builtin network, in both circuit shapes
/// (n-ary and binarized), through every tape mode and every semiring,
/// with the fused stream proven equivalent on top. A latent emission
/// irregularity in any compiler path would surface here as a typed
/// error naming the instruction.
#[test]
fn builtin_network_sweep_verifies_every_mode_and_semiring() {
    let nets = [
        ("figure1", networks::figure1()),
        ("sprinkler", networks::sprinkler()),
        ("asia", networks::asia()),
        ("student", networks::student()),
        ("earthquake", networks::earthquake()),
        ("cancer", networks::cancer()),
        ("alarm", networks::alarm(11)),
    ];
    for (name, net) in nets {
        let nary = compile(&net).unwrap();
        let bin = binarize(&nary).unwrap();
        for (shape, g) in [("nary", &nary), ("bin", &bin)] {
            for semiring in [
                Semiring::SumProduct,
                Semiring::MaxProduct,
                Semiring::MinProduct,
            ] {
                let compact = Tape::compile(g, semiring).unwrap();
                compact
                    .verify()
                    .unwrap_or_else(|e| panic!("{name}/{shape}/{semiring:?} compact: {e}"));
                compact
                    .verify_fused(&compact.fuse())
                    .unwrap_or_else(|e| panic!("{name}/{shape}/{semiring:?} fused: {e}"));

                let full = Tape::compile_full(g, semiring).unwrap();
                full.verify()
                    .unwrap_or_else(|e| panic!("{name}/{shape}/{semiring:?} full: {e}"));
                full.verify_fused(&full.fuse())
                    .unwrap_or_else(|e| panic!("{name}/{shape}/{semiring:?} fused-full: {e}"));
            }
        }
    }
}

#[test]
fn pool_admission_rejects_a_corrupted_tape_with_a_typed_error() {
    let g = chained();
    let mut sum = Engine::from_graph(&g, Semiring::SumProduct, F64Arith::new()).unwrap();
    let mpe = Engine::from_graph_full(&g, Semiring::MaxProduct, F64Arith::new()).unwrap();

    // Corrupt the serving engine's tape after compilation — the moment
    // the debug-build auto-check can no longer help.
    sum.raw_tape_mut().raw_instrs_mut().swap(0, 1);

    let mut pool: CircuitPool<F64Arith> = CircuitPool::new(F64Arith::new());
    let err = pool.register_engines("alarm-v2", sum, mpe).unwrap_err();
    assert!(matches!(
        err,
        EngineError::Verify(VerifyError::UseBeforeDef { .. })
    ));
    assert!(pool.is_empty(), "a rejected tape never joins the pool");

    // The compile-and-admit path still accepts the clean circuit.
    let mut pool: CircuitPool<F64Arith> = CircuitPool::new(F64Arith::new());
    pool.register("alarm-v2", &g).unwrap();
    assert_eq!(pool.len(), 1);
}
