//! Edge-case behaviour of the hardware layer: malformed inputs surface
//! typed [`HwError`]s and resolution loss surfaces sticky flags — never
//! silent zeros.

use problp_ac::{compile, transform::binarize};
use problp_bayes::{networks, Evidence, EvidenceBatch, VarId};
use problp_hw::{HwError, Netlist, PipelineSim, Schedule};
use problp_num::{Arith, FixedArith, FixedFormat, Representation};

fn sprinkler_netlist(frac: u32) -> (Netlist, FixedFormat) {
    let ac = binarize(&compile(&networks::sprinkler()).unwrap()).unwrap();
    let format = FixedFormat::new(1, frac).unwrap();
    let nl = Netlist::from_ac(&ac, Representation::Fixed(format)).unwrap();
    (nl, format)
}

#[test]
fn empty_evidence_is_a_typed_shape_error() {
    // Evidence over zero variables cannot drive a real datapath: both
    // executors reject it with the typed length mismatch instead of
    // treating every indicator as unobserved.
    let (nl, format) = sprinkler_netlist(11);
    let empty = Evidence::empty(0);
    let mut sim = PipelineSim::new(&nl, FixedArith::new(format));
    assert!(matches!(
        sim.step(Some(&empty)).unwrap_err(),
        HwError::EvidenceLengthMismatch { evidence: 0, .. }
    ));
    let schedule = Schedule::from_netlist(&nl).unwrap();
    let mut ctx = FixedArith::new(format);
    assert!(matches!(
        schedule.execute(&mut ctx, &empty).unwrap_err(),
        HwError::EvidenceLengthMismatch { evidence: 0, .. }
    ));
}

#[test]
fn missing_input_slot_is_a_typed_error_not_a_silent_zero() {
    // Observing a state outside a variable's arity means no indicator
    // slot matches: every λ of that variable would read 0 and the
    // datapath would compute Pr = 0 without complaint. All three entry
    // points reject it instead.
    let (nl, format) = sprinkler_netlist(11);
    let var_count = nl.var_arities().len();
    let mut bad = Evidence::empty(var_count);
    bad.observe(VarId::from_index(0), 5); // sprinkler variables are binary

    let mut sim = PipelineSim::new(&nl, FixedArith::new(format));
    assert!(matches!(
        sim.step(Some(&bad)).unwrap_err(),
        HwError::MissingInputSlot {
            var: 0,
            state: 5,
            arity: 2
        }
    ));

    let schedule = Schedule::from_netlist(&nl).unwrap();
    let mut ctx = FixedArith::new(format);
    assert!(matches!(
        schedule.execute(&mut ctx, &bad).unwrap_err(),
        HwError::MissingInputSlot { state: 5, .. }
    ));

    let mut batch = EvidenceBatch::new(var_count);
    batch.push(&Evidence::empty(var_count));
    batch.push(&bad);
    let mut sim = PipelineSim::new(&nl, FixedArith::new(format));
    assert!(matches!(
        sim.run_batch(&batch).unwrap_err(),
        HwError::MissingInputSlot { state: 5, .. }
    ));
    let mut ctx = FixedArith::new(format);
    assert!(matches!(
        schedule.execute_batch(&mut ctx, &batch).unwrap_err(),
        HwError::MissingInputSlot { state: 5, .. }
    ));
}

/// A two-parameter product circuit whose fixed-point product rounds to
/// zero at `F = 4`: 0.06 and 0.05 both quantise to raw 1 (one ulp,
/// 0.0625) and `1 × 1` rounds to raw 0.
fn underflowing_product() -> problp_ac::AcGraph {
    let mut g = problp_ac::AcGraph::new(vec![2]);
    let a = g.param(0.06).unwrap();
    let b = g.param(0.05).unwrap();
    let p = g.product(vec![a, b]).unwrap();
    g.set_root(p);
    g
}

#[test]
fn fixed_underflow_to_zero_raises_flags_in_the_pipeline() {
    let g = underflowing_product();
    let format = FixedFormat::new(1, 4).unwrap();
    let nl = Netlist::from_ac(&g, Representation::Fixed(format)).unwrap();
    let mut sim = PipelineSim::new(&nl, FixedArith::new(format));
    let out = sim.run(&Evidence::empty(1)).unwrap();
    // The zero result is real, but it must not be silent.
    assert_eq!(out.raw(), 0);
    assert!(
        sim.flags().underflow,
        "non-zero × non-zero -> zero must raise underflow"
    );
    // And the event counter counts occurrences, not just the sticky
    // bit: two runs through the one underflowing multiplier → two
    // events (the telemetry layer exports this as a rate).
    assert_eq!(sim.underflow_events(), 1);
    let _ = sim.run(&Evidence::empty(1)).unwrap();
    assert_eq!(sim.underflow_events(), 2);
}

#[test]
fn fixed_underflow_to_zero_raises_flags_in_the_schedule() {
    let g = underflowing_product();
    let format = FixedFormat::new(1, 4).unwrap();
    let nl = Netlist::from_ac(&g, Representation::Fixed(format)).unwrap();
    let schedule = Schedule::from_netlist(&nl).unwrap();
    let mut ctx = FixedArith::new(format);
    let (out, hw_flags) = schedule
        .execute_flagged(&mut ctx, &Evidence::empty(1))
        .unwrap();
    assert_eq!(ctx.to_f64(&out), 0.0);
    assert!(hw_flags.underflow);
}

#[test]
fn clean_lanes_leave_the_underflow_flag_clear() {
    // A healthy evaluation at a comfortable width: zero results only
    // come from zero indicators, so no underflow is reported.
    let (nl, format) = sprinkler_netlist(11);
    let mut sim = PipelineSim::new(&nl, FixedArith::new(format));
    let mut e = Evidence::empty(nl.var_arities().len());
    e.observe(VarId::from_index(0), 1);
    let _ = sim.run(&e).unwrap();
    assert!(!sim.flags().underflow);

    let schedule = Schedule::from_netlist(&nl).unwrap();
    let mut ctx = FixedArith::new(format);
    let (_, hw_flags) = schedule.execute_flagged(&mut ctx, &e).unwrap();
    assert!(!hw_flags.underflow);
}

#[test]
fn batch_shape_mismatch_is_typed_for_both_executors() {
    let (nl, format) = sprinkler_netlist(11);
    let schedule = Schedule::from_netlist(&nl).unwrap();
    let bad = EvidenceBatch::new(nl.var_arities().len() + 3);
    let mut sim = PipelineSim::new(&nl, FixedArith::new(format));
    assert!(matches!(
        sim.run_batch(&bad).unwrap_err(),
        HwError::BatchLengthMismatch { .. }
    ));
    let mut ctx = FixedArith::new(format);
    assert!(matches!(
        schedule.execute_batch(&mut ctx, &bad).unwrap_err(),
        HwError::BatchLengthMismatch { .. }
    ));
}
