//! Property tests for the hardware crate: for random circuits, formats
//! and evidence, the parallel pipeline, the sequential schedule and the
//! software evaluation agree bit-for-bit, and the structural invariants
//! (stage monotonicity, balancing-register accounting) hold.

use proptest::prelude::*;

use problp_ac::{compile, transform::binarize, Semiring};
use problp_bayes::{networks, Evidence, EvidenceBatch, VarId};
use problp_hw::{CellKind, Netlist, PipelineSim, Schedule};
use problp_num::{F64Arith, FixedArith, FixedFormat, FloatArith, FloatFormat, Representation};

fn evidence_from(net: &problp_bayes::BayesNet, picks: &[usize]) -> Evidence {
    let mut e = Evidence::empty(net.var_count());
    for (v, p) in picks.iter().take(net.var_count()).enumerate() {
        if p % 2 == 0 {
            let arity = net.variable(VarId::from_index(v)).arity();
            e.observe(VarId::from_index(v), p % arity);
        }
    }
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn three_implementations_agree_fixed(
        seed in 0u64..200,
        picks in proptest::collection::vec(0usize..100, 6),
        frac in 6u32..24,
    ) {
        let net = networks::random_network(seed, 6, 2, 3);
        let ac = binarize(&compile(&net).unwrap()).unwrap();
        let format = FixedFormat::new(2, frac).unwrap();
        let nl = Netlist::from_ac(&ac, Representation::Fixed(format)).unwrap();
        let schedule = Schedule::from_netlist(&nl).unwrap();
        let e = evidence_from(&net, &picks);

        let mut sw = FixedArith::new(format);
        let software = ac.evaluate_with(&mut sw, &e, Semiring::SumProduct).unwrap();
        let mut pipe = PipelineSim::new(&nl, FixedArith::new(format));
        let parallel = pipe.run(&e).unwrap();
        let mut seq_ctx = FixedArith::new(format);
        let sequential = schedule.execute(&mut seq_ctx, &e).unwrap();

        prop_assert_eq!(software.raw(), parallel.raw());
        prop_assert_eq!(software.raw(), sequential.raw());
    }

    #[test]
    fn three_implementations_agree_float(
        seed in 0u64..200,
        picks in proptest::collection::vec(0usize..100, 6),
        mant in 4u32..20,
    ) {
        let net = networks::random_network(seed, 5, 2, 3);
        let ac = binarize(&compile(&net).unwrap()).unwrap();
        let format = FloatFormat::new(8, mant).unwrap();
        let nl = Netlist::from_ac(&ac, Representation::Float(format)).unwrap();
        let schedule = Schedule::from_netlist(&nl).unwrap();
        let e = evidence_from(&net, &picks);

        let mut sw = FloatArith::new(format);
        let software = ac.evaluate_with(&mut sw, &e, Semiring::SumProduct).unwrap();
        let mut pipe = PipelineSim::new(&nl, FloatArith::new(format));
        let parallel = pipe.run(&e).unwrap();
        let mut seq_ctx = FloatArith::new(format);
        let sequential = schedule.execute(&mut seq_ctx, &e).unwrap();

        prop_assert_eq!(&software, &parallel);
        prop_assert_eq!(&software, &sequential);
    }

    #[test]
    fn pipeline_structure_invariants(seed in 0u64..200) {
        let net = networks::random_network(seed, 6, 3, 3);
        let ac = binarize(&compile(&net).unwrap()).unwrap();
        let nl = Netlist::from_ac(
            &ac,
            Representation::Fixed(FixedFormat::new(1, 10).unwrap()),
        )
        .unwrap();
        let mut max_stage = 0;
        for cell in nl.cells() {
            if let CellKind::Op { a, b, .. } = &cell.kind {
                // Operators sit exactly one stage after their latest input.
                let sa = nl.cell(*a).stage;
                let sb = nl.cell(*b).stage;
                prop_assert_eq!(cell.stage, 1 + sa.max(sb));
            } else {
                prop_assert_eq!(cell.stage, 0);
            }
            max_stage = max_stage.max(cell.stage);
        }
        prop_assert_eq!(nl.pipeline_depth(), nl.cell(nl.output()).stage);
        prop_assert!(nl.pipeline_depth() <= max_stage);
        // Register accounting: balance regs equal the summed edge delays.
        let mut total_delay = 0usize;
        for (i, cell) in nl.cells().iter().enumerate() {
            if let CellKind::Op { a, b, .. } = &cell.kind {
                let to = problp_hw::CellId::from_index(i);
                total_delay += nl.edge_delay(*a, to) as usize;
                total_delay += nl.edge_delay(*b, to) as usize;
            }
        }
        prop_assert_eq!(nl.stats().balance_regs, total_delay);
    }

    #[test]
    fn streaming_results_are_independent(
        seed in 0u64..100,
        picks_a in proptest::collection::vec(0usize..100, 6),
        picks_b in proptest::collection::vec(0usize..100, 6),
    ) {
        // Back-to-back queries must not contaminate each other.
        let net = networks::random_network(seed, 5, 2, 3);
        let ac = binarize(&compile(&net).unwrap()).unwrap();
        let format = FixedFormat::new(1, 12).unwrap();
        let nl = Netlist::from_ac(&ac, Representation::Fixed(format)).unwrap();
        let (ea, eb) = (evidence_from(&net, &picks_a), evidence_from(&net, &picks_b));
        let expect = |e: &Evidence| {
            let mut sw = FixedArith::new(format);
            ac.evaluate_with(&mut sw, e, Semiring::SumProduct).unwrap().raw()
        };
        let depth = nl.pipeline_depth().max(1) as usize;
        let mut sim = PipelineSim::new(&nl, FixedArith::new(format));
        let mut outputs = Vec::new();
        outputs.push(sim.step(Some(&ea)).unwrap());
        outputs.push(sim.step(Some(&eb)).unwrap());
        for _ in 0..depth {
            outputs.push(sim.step(None).unwrap());
        }
        prop_assert_eq!(outputs[depth - 1].as_ref().unwrap().raw(), expect(&ea));
        prop_assert_eq!(outputs[depth].as_ref().unwrap().raw(), expect(&eb));
    }

    #[test]
    fn pipeline_matches_schedule_across_all_representations(
        seed in 0u64..200,
        picks in proptest::collection::vec(0usize..100, 6),
        frac in 6u32..24,
        mant in 4u32..20,
    ) {
        // The two executors must agree bit for bit in every arithmetic the
        // framework chooses between: exact f64, low-precision fixed point
        // and low-precision floating point — on the same random netlist.
        let net = networks::random_network(seed, 6, 2, 3);
        let ac = binarize(&compile(&net).unwrap()).unwrap();
        let e = evidence_from(&net, &picks);
        let fixed_fmt = FixedFormat::new(2, frac).unwrap();
        let float_fmt = FloatFormat::new(8, mant).unwrap();
        let nl = Netlist::from_ac(&ac, Representation::Fixed(fixed_fmt)).unwrap();
        let schedule = Schedule::from_netlist(&nl).unwrap();

        let mut pipe = PipelineSim::new(&nl, F64Arith::new());
        let parallel = pipe.run(&e).unwrap();
        let mut ctx = F64Arith::new();
        let sequential = schedule.execute(&mut ctx, &e).unwrap();
        prop_assert_eq!(parallel.to_bits(), sequential.to_bits());

        let mut pipe = PipelineSim::new(&nl, FixedArith::new(fixed_fmt));
        let parallel = pipe.run(&e).unwrap();
        let mut ctx = FixedArith::new(fixed_fmt);
        let sequential = schedule.execute(&mut ctx, &e).unwrap();
        prop_assert_eq!(parallel.raw(), sequential.raw());

        let mut pipe = PipelineSim::new(&nl, FloatArith::new(float_fmt));
        let parallel = pipe.run(&e).unwrap();
        let mut ctx = FloatArith::new(float_fmt);
        let sequential = schedule.execute(&mut ctx, &e).unwrap();
        prop_assert_eq!(parallel, sequential);
    }

    #[test]
    fn batched_drivers_match_the_lane_at_a_time_paths(
        seed in 0u64..100,
        picks in proptest::collection::vec(0usize..100, 24),
        frac in 6u32..20,
    ) {
        // run_batch (one lane per cycle, streaming) and execute_batch
        // must reproduce the drain-between-lanes results exactly, in
        // lane order.
        let net = networks::random_network(seed, 5, 2, 3);
        let ac = binarize(&compile(&net).unwrap()).unwrap();
        let format = FixedFormat::new(2, frac).unwrap();
        let nl = Netlist::from_ac(&ac, Representation::Fixed(format)).unwrap();
        let schedule = Schedule::from_netlist(&nl).unwrap();
        let evidences: Vec<Evidence> = picks
            .chunks(6)
            .map(|c| evidence_from(&net, c))
            .collect();
        let batch = EvidenceBatch::from_evidences(net.var_count(), &evidences).unwrap();

        let mut sim = PipelineSim::new(&nl, FixedArith::new(format));
        let streamed = sim.run_batch(&batch).unwrap();
        let mut ctx = FixedArith::new(format);
        let sequential = schedule.execute_batch(&mut ctx, &batch).unwrap();
        prop_assert_eq!(streamed.len(), evidences.len());
        for (lane, e) in evidences.iter().enumerate() {
            let mut fresh = PipelineSim::new(&nl, FixedArith::new(format));
            let drained = fresh.run(e).unwrap();
            prop_assert_eq!(streamed[lane].raw(), drained.raw(), "lane {}", lane);
            prop_assert_eq!(sequential[lane].raw(), drained.raw(), "lane {}", lane);
        }
    }

    #[test]
    fn schedule_register_count_is_bounded_by_operator_count(seed in 0u64..200) {
        let net = networks::random_network(seed, 7, 3, 3);
        let ac = binarize(&compile(&net).unwrap()).unwrap();
        let nl = Netlist::from_ac(
            &ac,
            Representation::Fixed(FixedFormat::new(1, 10).unwrap()),
        )
        .unwrap();
        let schedule = Schedule::from_netlist(&nl).unwrap();
        let stats = schedule.stats();
        prop_assert!(stats.registers <= stats.instructions.max(1));
        prop_assert_eq!(stats.instructions, nl.stats().adds + nl.stats().muls);
    }
}
