//! The pipelined-datapath netlist (paper §3.4, Fig. 4).
//!
//! ProbLP converts the binarized AC into a fully-parallel, fully-pipelined
//! datapath: every two-input operator becomes an arithmetic cell with an
//! output register, and edges that skip pipeline stages receive balancing
//! registers so all paths have equal latency — the "mismatch in path
//! timings" registers of Fig. 4.

use problp_ac::{AcGraph, AcNode};
use problp_bayes::VarId;
use problp_num::Representation;

use crate::error::HwError;

/// Identifier of a cell within a [`Netlist`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct CellId(u32);

impl CellId {
    /// Creates a cell id from its dense index.
    #[inline]
    pub const fn from_index(index: usize) -> Self {
        CellId(index as u32)
    }

    /// The dense index of this cell.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for CellId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The two arithmetic operator types of an AC datapath.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum HwOp {
    /// A two-input adder.
    Add,
    /// A two-input multiplier.
    Mul,
}

/// What a netlist cell is.
#[derive(Clone, PartialEq, Debug)]
pub enum CellKind {
    /// An indicator input `λ_{var = state}`: a one-bit input expanded to a
    /// word of 0.0 or 1.0.
    Input {
        /// The indicator's variable.
        var: VarId,
        /// The indicated state.
        state: usize,
    },
    /// A constant parameter `θ` (becomes a literal in the Verilog).
    Constant {
        /// The parameter's real value (encoded per the netlist's format).
        value: f64,
    },
    /// A registered two-input arithmetic operator.
    Op {
        /// The operator type.
        op: HwOp,
        /// First operand.
        a: CellId,
        /// Second operand.
        b: CellId,
    },
}

/// One cell of the netlist with its pipeline stage (leaves are stage 0; an
/// operator's result is registered at its stage).
#[derive(Clone, PartialEq, Debug)]
pub struct Cell {
    /// What the cell is.
    pub kind: CellKind,
    /// The pipeline stage at which this cell's value is available.
    pub stage: u32,
}

/// Aggregate statistics of a pipelined netlist (consumed by the
/// gate-level energy estimator).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct HwStats {
    /// Two-input adders.
    pub adds: usize,
    /// Two-input multipliers.
    pub muls: usize,
    /// Indicator input bits.
    pub inputs: usize,
    /// Distinct parameter constants.
    pub constants: usize,
    /// Datapath word width in bits.
    pub word_bits: u32,
    /// Pipeline depth in clock cycles (= the output's stage).
    pub pipeline_depth: u32,
    /// Operator output registers (one word each).
    pub output_regs: usize,
    /// Balancing registers inserted for path-timing mismatches (words).
    pub balance_regs: usize,
}

impl HwStats {
    /// Total register bits ((output + balancing) words × word width).
    pub fn register_bits(&self) -> usize {
        (self.output_regs + self.balance_regs) * self.word_bits as usize
    }
}

impl std::fmt::Display for HwStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} adds + {} muls @ {} bits, {} stages, {} output regs, {} balance regs",
            self.adds,
            self.muls,
            self.word_bits,
            self.pipeline_depth,
            self.output_regs,
            self.balance_regs
        )
    }
}

/// A fully-parallel pipelined datapath implementing one arithmetic
/// circuit in one number representation.
///
/// # Examples
///
/// ```
/// use problp_ac::{compile, transform::binarize};
/// use problp_bayes::networks;
/// use problp_hw::Netlist;
/// use problp_num::{FixedFormat, Representation};
///
/// let ac = binarize(&compile(&networks::sprinkler())?)?;
/// let nl = Netlist::from_ac(&ac, Representation::Fixed(FixedFormat::new(1, 11)?))?;
/// let stats = nl.stats();
/// assert_eq!(stats.word_bits, 12);
/// assert!(stats.pipeline_depth >= 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct Netlist {
    repr: Representation,
    cells: Vec<Cell>,
    output: CellId,
    var_arities: Vec<usize>,
}

impl Netlist {
    /// Builds the pipelined netlist for a binarized circuit.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::NotBinary`] for circuits with wider operators,
    /// [`HwError::MissingRoot`] for rootless circuits, and
    /// [`HwError::UnsupportedFormat`] for fixed-point formats without
    /// fraction bits.
    pub fn from_ac(ac: &AcGraph, repr: Representation) -> Result<Self, HwError> {
        let root = ac.root().ok_or(HwError::MissingRoot)?;
        if !ac.is_binary() {
            return Err(HwError::NotBinary);
        }
        if let Representation::Fixed(f) = repr {
            if f.frac_bits() == 0 {
                return Err(HwError::UnsupportedFormat {
                    reason: "fixed-point multipliers need at least one fraction bit".into(),
                });
            }
        }
        let reachable = ac.reachable();
        let mut cells: Vec<Cell> = Vec::new();
        let mut map: Vec<Option<CellId>> = vec![None; ac.len()];
        for (i, node) in ac.nodes().iter().enumerate() {
            if !reachable[i] {
                continue;
            }
            let cell = match node {
                AcNode::Param { value } => Cell {
                    kind: CellKind::Constant { value: *value },
                    stage: 0,
                },
                AcNode::Indicator { var, state } => Cell {
                    kind: CellKind::Input {
                        var: *var,
                        state: *state,
                    },
                    stage: 0,
                },
                AcNode::Sum(children) | AcNode::Product(children) => {
                    debug_assert_eq!(children.len(), 2);
                    let a = map[children[0].index()].expect("children precede parents");
                    let b = map[children[1].index()].expect("children precede parents");
                    let stage = 1 + cells[a.index()].stage.max(cells[b.index()].stage);
                    Cell {
                        kind: CellKind::Op {
                            op: if matches!(node, AcNode::Sum(_)) {
                                HwOp::Add
                            } else {
                                HwOp::Mul
                            },
                            a,
                            b,
                        },
                        stage,
                    }
                }
            };
            let id = CellId::from_index(cells.len());
            cells.push(cell);
            map[i] = Some(id);
        }
        Ok(Netlist {
            repr,
            cells,
            output: map[root.index()].expect("root is reachable"),
            var_arities: ac.var_arities().to_vec(),
        })
    }

    /// The number representation of the datapath.
    pub fn representation(&self) -> Representation {
        self.repr
    }

    /// All cells in topological order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// The cell with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// The output cell.
    pub fn output(&self) -> CellId {
        self.output
    }

    /// Arities of the variables the indicator inputs range over.
    pub fn var_arities(&self) -> &[usize] {
        &self.var_arities
    }

    /// Pipeline depth: the clock cycles from applying an input vector to
    /// its result appearing at the output register.
    pub fn pipeline_depth(&self) -> u32 {
        self.cells[self.output.index()].stage
    }

    /// The number of balancing registers needed on the edge `from -> to`
    /// (Fig. 4's path-timing mismatch registers).
    pub fn edge_delay(&self, from: CellId, to: CellId) -> u32 {
        let consume = self.cells[to.index()].stage - 1;
        consume - self.cells[from.index()].stage
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> HwStats {
        let mut stats = HwStats {
            word_bits: self.repr.word_bits(),
            pipeline_depth: self.pipeline_depth(),
            ..HwStats::default()
        };
        for cell in &self.cells {
            match &cell.kind {
                CellKind::Input { .. } => stats.inputs += 1,
                CellKind::Constant { .. } => stats.constants += 1,
                CellKind::Op { op, a, b } => {
                    match op {
                        HwOp::Add => stats.adds += 1,
                        HwOp::Mul => stats.muls += 1,
                    }
                    stats.output_regs += 1;
                    stats.balance_regs += (cell.stage - 1 - self.cells[a.index()].stage) as usize
                        + (cell.stage - 1 - self.cells[b.index()].stage) as usize;
                }
            }
        }
        stats
    }
}

impl std::fmt::Display for Netlist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Netlist[{}]({})", self.repr, self.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use problp_ac::{compile, transform::binarize};
    use problp_bayes::networks;
    use problp_num::{FixedFormat, FloatFormat};

    fn fixed_repr() -> Representation {
        Representation::Fixed(FixedFormat::new(1, 11).unwrap())
    }

    fn sprinkler_netlist() -> Netlist {
        let ac = binarize(&compile(&networks::sprinkler()).unwrap()).unwrap();
        Netlist::from_ac(&ac, fixed_repr()).unwrap()
    }

    #[test]
    fn cell_census_matches_circuit() {
        let ac = binarize(&compile(&networks::sprinkler()).unwrap()).unwrap();
        let nl = Netlist::from_ac(&ac, fixed_repr()).unwrap();
        let ac_stats = ac.stats();
        let hw = nl.stats();
        assert_eq!(hw.adds, ac_stats.sums);
        assert_eq!(hw.muls, ac_stats.products);
        assert_eq!(hw.inputs, ac_stats.indicators);
        assert_eq!(hw.constants, ac_stats.params);
        assert_eq!(hw.output_regs, hw.adds + hw.muls);
        assert_eq!(hw.pipeline_depth as usize, ac_stats.depth);
    }

    #[test]
    fn stage_assignment_is_monotone() {
        let nl = sprinkler_netlist();
        for cell in nl.cells() {
            if let CellKind::Op { a, b, .. } = &cell.kind {
                assert!(cell.stage > nl.cell(*a).stage);
                assert!(cell.stage > nl.cell(*b).stage);
                assert_eq!(
                    cell.stage,
                    1 + nl.cell(*a).stage.max(nl.cell(*b).stage),
                    "operators are placed as early as possible"
                );
            }
        }
    }

    #[test]
    fn figure4_balancing_registers() {
        // Two leaves A, B; op1 = A * B (stage 1); op2 = op1 * A (stage 2):
        // the A -> op2 edge skips a stage and needs one balancing register.
        let mut g = problp_ac::AcGraph::new(vec![2]);
        let a = g.indicator(VarId::from_index(0), 0).unwrap();
        let b = g.indicator(VarId::from_index(0), 1).unwrap();
        let op1 = g.product(vec![a, b]).unwrap();
        let op2 = g.product(vec![op1, a]).unwrap();
        g.set_root(op2);
        let nl = Netlist::from_ac(&g, fixed_repr()).unwrap();
        let stats = nl.stats();
        assert_eq!(stats.pipeline_depth, 2);
        assert_eq!(stats.balance_regs, 1);
        assert_eq!(stats.output_regs, 2);
        assert_eq!(stats.register_bits(), 3 * 12);
    }

    #[test]
    fn word_width_follows_representation() {
        let ac = binarize(&compile(&networks::figure1()).unwrap()).unwrap();
        let fx = Netlist::from_ac(&ac, fixed_repr()).unwrap();
        assert_eq!(fx.stats().word_bits, 12);
        let fl =
            Netlist::from_ac(&ac, Representation::Float(FloatFormat::new(8, 13).unwrap())).unwrap();
        assert_eq!(fl.stats().word_bits, 21);
    }

    #[test]
    fn non_binary_circuits_are_rejected() {
        let ac = compile(&networks::sprinkler()).unwrap();
        if !ac.is_binary() {
            assert_eq!(
                Netlist::from_ac(&ac, fixed_repr()).unwrap_err(),
                HwError::NotBinary
            );
        }
    }

    #[test]
    fn fraction_free_fixed_is_rejected() {
        let ac = binarize(&compile(&networks::figure1()).unwrap()).unwrap();
        let err = Netlist::from_ac(&ac, Representation::Fixed(FixedFormat::new(4, 0).unwrap()))
            .unwrap_err();
        assert!(matches!(err, HwError::UnsupportedFormat { .. }));
    }

    use problp_bayes::VarId;
}
