//! Error types for hardware generation.

/// Errors produced by netlist construction and simulation.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum HwError {
    /// The circuit contains operators with more than two inputs; run
    /// `problp_ac::transform::binarize` first (paper §3.4 stage one).
    NotBinary,
    /// The circuit has no root.
    MissingRoot,
    /// Evidence ranges over a different number of variables than the
    /// netlist.
    EvidenceLengthMismatch {
        /// Variables in the evidence.
        evidence: usize,
        /// Variables in the netlist.
        netlist: usize,
    },
    /// An evidence batch ranges over a different number of variables than
    /// the netlist (the batched-driver analogue of
    /// [`HwError::EvidenceLengthMismatch`]).
    BatchLengthMismatch {
        /// Variables per lane in the batch.
        batch: usize,
        /// Variables in the netlist.
        netlist: usize,
    },
    /// The evidence observes a state with no matching indicator input
    /// slot (`state >= arity`): every indicator of that variable would
    /// read 0 and the datapath would compute a silent, meaningless zero.
    MissingInputSlot {
        /// The observed variable's index.
        var: usize,
        /// The observed (out-of-range) state.
        state: usize,
        /// The variable's arity (valid states are `0..arity`).
        arity: usize,
    },
    /// The fixed-point format has no fraction bits; the emitted multiplier
    /// rounding idiom requires `F >= 1`.
    UnsupportedFormat {
        /// Human-readable reason.
        reason: String,
    },
}

impl std::fmt::Display for HwError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HwError::NotBinary => {
                write!(f, "hardware generation requires a binarized circuit")
            }
            HwError::MissingRoot => write!(f, "the circuit has no root node"),
            HwError::EvidenceLengthMismatch { evidence, netlist } => write!(
                f,
                "evidence over {evidence} variables but the netlist has {netlist}"
            ),
            HwError::BatchLengthMismatch { batch, netlist } => write!(
                f,
                "evidence batch over {batch} variables but the netlist has {netlist}"
            ),
            HwError::MissingInputSlot { var, state, arity } => write!(
                f,
                "evidence observes variable {var} in state {state} but the datapath only \
                 has indicator slots for states 0..{arity}"
            ),
            HwError::UnsupportedFormat { reason } => write!(f, "unsupported format: {reason}"),
        }
    }
}

impl std::error::Error for HwError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(HwError::NotBinary.to_string().contains("binarized"));
    }

    #[test]
    fn error_trait_bounds() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<HwError>();
    }
}
