//! # problp-hw — automatic hardware generation for ProbLP
//!
//! The hardware back-end of the framework (paper §3.4): converts a
//! binarized arithmetic circuit into a fully-parallel, fully-pipelined
//! custom-precision datapath.
//!
//! * [`Netlist`] — the datapath IR: one registered two-input operator per
//!   AC operator, pipeline stages assigned as early as possible, balancing
//!   registers on every path-timing mismatch (Fig. 4).
//! * [`PipelineSim`] — a cycle-accurate simulator of the generated
//!   datapath, used to verify latency, streaming throughput and
//!   bit-exactness against the software evaluation.
//! * [`emit_verilog`] — the Verilog code generator (the framework's final
//!   output in Fig. 2).
//!
//! # Examples
//!
//! ```
//! use problp_ac::{compile, transform::binarize};
//! use problp_bayes::{networks, Evidence};
//! use problp_hw::{emit_verilog, Netlist, PipelineSim};
//! use problp_num::{Arith, FixedArith, FixedFormat, Representation};
//!
//! let net = networks::sprinkler();
//! let ac = binarize(&compile(&net)?)?;
//! let format = FixedFormat::new(1, 11)?;
//! let nl = Netlist::from_ac(&ac, Representation::Fixed(format))?;
//!
//! // Cycle-accurate check against software evaluation.
//! let mut sim = PipelineSim::new(&nl, FixedArith::new(format));
//! let e = Evidence::empty(net.var_count());
//! let hw_result = sim.run(&e)?;
//! assert!((sim.context().to_f64(&hw_result) - 1.0).abs() < 0.01);
//!
//! // And the RTL itself.
//! let rtl = emit_verilog(&nl);
//! assert!(rtl.contains("problp_ac_top"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod netlist;
mod schedule;
mod sim;
mod verilog;

pub use error::HwError;
pub use netlist::{Cell, CellId, CellKind, HwOp, HwStats, Netlist};
pub use schedule::{Instruction, Operand, Schedule, ScheduleStats};
pub use sim::PipelineSim;
pub use verilog::{emit_testbench, emit_verilog};
