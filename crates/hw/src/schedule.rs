//! A sequential (time-multiplexed) accelerator: the architecture
//! alternative to the paper's fully-parallel datapath.
//!
//! ProbLP generates one operator per AC node (paper §3.4); prior
//! accelerators (e.g. Khan & Wentzloff 2016, cited as [12]) instead
//! execute the circuit on a single ALU with a register file and an
//! instruction ROM. This module provides that design point for
//! comparison: it compiles a [`Netlist`] into a linear [`Schedule`] with
//! register allocation, executes it bit-exactly in any arithmetic, and
//! reports the register-file size the circuit requires.
//!
//! Trade-off in one sentence: the parallel datapath spends area and
//! register energy for single-cycle throughput, while the schedule takes
//! one cycle per operator but needs only `max-liveness` registers.

use problp_num::{Arith, Flags};

use crate::error::HwError;
use crate::netlist::{CellKind, HwOp, Netlist};

/// Where an ALU operand comes from.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// A constant from the parameter ROM (index into [`Schedule::constants`]).
    Const(u32),
    /// An indicator input word (index into [`Schedule::inputs`]).
    Input(u32),
    /// A register-file entry.
    Reg(u32),
}

/// One ALU instruction: `dst = a op b`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Instruction {
    /// The operation.
    pub op: HwOp,
    /// First operand.
    pub a: Operand,
    /// Second operand.
    pub b: Operand,
    /// Destination register.
    pub dst: u32,
}

/// Aggregate statistics of a schedule.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ScheduleStats {
    /// Instructions (= cycles per evaluation).
    pub instructions: usize,
    /// Additions among them.
    pub adds: usize,
    /// Multiplications among them.
    pub muls: usize,
    /// Register-file entries needed (peak liveness).
    pub registers: usize,
    /// Constant-ROM entries.
    pub constants: usize,
    /// Indicator input words.
    pub inputs: usize,
    /// Datapath word width in bits.
    pub word_bits: u32,
}

impl std::fmt::Display for ScheduleStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} instructions ({} adds, {} muls), {} registers, {} constants @ {} bits",
            self.instructions, self.adds, self.muls, self.registers, self.constants, self.word_bits
        )
    }
}

/// A linear instruction schedule executing one AC evaluation on a single
/// ALU.
///
/// # Examples
///
/// ```
/// use problp_ac::{compile, transform::binarize};
/// use problp_bayes::{networks, Evidence};
/// use problp_hw::{Netlist, Schedule};
/// use problp_num::{Arith, FixedArith, FixedFormat, Representation};
///
/// let net = networks::sprinkler();
/// let ac = binarize(&compile(&net)?)?;
/// let format = FixedFormat::new(1, 11)?;
/// let nl = Netlist::from_ac(&ac, Representation::Fixed(format))?;
/// let schedule = Schedule::from_netlist(&nl)?;
///
/// // Far fewer registers than the parallel datapath's output registers.
/// assert!(schedule.stats().registers < nl.stats().output_regs);
///
/// // And bit-exact execution.
/// let mut ctx = FixedArith::new(format);
/// let out = schedule.execute(&mut ctx, &Evidence::empty(net.var_count()))?;
/// assert!((ctx.to_f64(&out) - 1.0).abs() < 0.01);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct Schedule {
    repr: problp_num::Representation,
    instructions: Vec<Instruction>,
    constants: Vec<f64>,
    inputs: Vec<(problp_bayes::VarId, usize)>,
    register_count: usize,
    /// Where the final result lives (register, constant or input for
    /// degenerate circuits).
    output: Operand,
    /// Arities of the variables the indicator input words range over
    /// (used to reject observations with no input slot).
    var_arities: Vec<usize>,
}

impl Schedule {
    /// Compiles a netlist into a schedule with greedy register
    /// allocation: operators issue in topological order and a register is
    /// recycled after its last consumer.
    ///
    /// # Errors
    ///
    /// This conversion cannot fail for a valid [`Netlist`]; the `Result`
    /// mirrors the other constructors for API consistency.
    pub fn from_netlist(netlist: &Netlist) -> Result<Self, HwError> {
        let cells = netlist.cells();
        // Last use of each operator cell (operators only live in registers).
        let mut last_use = vec![usize::MAX; cells.len()];
        for (i, cell) in cells.iter().enumerate() {
            if let CellKind::Op { a, b, .. } = &cell.kind {
                last_use[a.index()] = i;
                last_use[b.index()] = i;
            }
        }
        let mut constants = Vec::new();
        let mut inputs = Vec::new();
        let mut operand_of: Vec<Option<Operand>> = vec![None; cells.len()];
        let mut instructions = Vec::new();
        let mut free_regs: Vec<u32> = Vec::new();
        let mut next_reg = 0u32;
        let mut reg_of: Vec<Option<u32>> = vec![None; cells.len()];
        for (i, cell) in cells.iter().enumerate() {
            match &cell.kind {
                CellKind::Constant { value } => {
                    operand_of[i] = Some(Operand::Const(constants.len() as u32));
                    constants.push(*value);
                }
                CellKind::Input { var, state } => {
                    operand_of[i] = Some(Operand::Input(inputs.len() as u32));
                    inputs.push((*var, *state));
                }
                CellKind::Op { op, a, b } => {
                    let oa = operand_of[a.index()].expect("children precede parents");
                    let ob = operand_of[b.index()].expect("children precede parents");
                    // Free operand registers whose last use is this
                    // instruction *before* allocating the destination, so
                    // `dst = a op a`-style reuse is possible.
                    for src in [a.index(), b.index()] {
                        if last_use[src] == i {
                            if let Some(r) = reg_of[src].take() {
                                free_regs.push(r);
                            }
                        }
                    }
                    let dst = free_regs.pop().unwrap_or_else(|| {
                        let r = next_reg;
                        next_reg += 1;
                        r
                    });
                    instructions.push(Instruction {
                        op: *op,
                        a: oa,
                        b: ob,
                        dst,
                    });
                    operand_of[i] = Some(Operand::Reg(dst));
                    reg_of[i] = Some(dst);
                }
            }
        }
        let output = operand_of[netlist.output().index()].expect("output exists");
        Ok(Schedule {
            repr: netlist.representation(),
            instructions,
            constants,
            inputs,
            register_count: next_reg as usize,
            output,
            var_arities: netlist.var_arities().to_vec(),
        })
    }

    /// The instruction stream.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// The constant ROM contents.
    pub fn constants(&self) -> &[f64] {
        &self.constants
    }

    /// The indicator input words in fetch order.
    pub fn inputs(&self) -> &[(problp_bayes::VarId, usize)] {
        &self.inputs
    }

    /// The representation the ALU computes in.
    pub fn representation(&self) -> problp_num::Representation {
        self.repr
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> ScheduleStats {
        ScheduleStats {
            instructions: self.instructions.len(),
            adds: self
                .instructions
                .iter()
                .filter(|i| i.op == HwOp::Add)
                .count(),
            muls: self
                .instructions
                .iter()
                .filter(|i| i.op == HwOp::Mul)
                .count(),
            registers: self.register_count,
            constants: self.constants.len(),
            inputs: self.inputs.len(),
            word_bits: self.repr.word_bits(),
        }
    }

    /// Executes the schedule under `evidence` in the given arithmetic.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::EvidenceLengthMismatch`] on a shape mismatch
    /// and [`HwError::MissingInputSlot`] when the evidence observes a
    /// state the ALU has no indicator input word for.
    pub fn execute<A: Arith>(
        &self,
        ctx: &mut A,
        evidence: &problp_bayes::Evidence,
    ) -> Result<A::Value, HwError> {
        self.execute_flagged(ctx, evidence).map(|(v, _)| v)
    }

    /// Like [`Schedule::execute`], but also returns the hardware-level
    /// status flags of this execution: `underflow` is raised when a
    /// multiply of two non-zero operands produced zero (the lane silently
    /// fell below the representation's resolution). The arithmetic
    /// context's own sticky rounding/overflow flags accumulate on `ctx`
    /// as usual and are *not* included.
    ///
    /// # Errors
    ///
    /// Same as [`Schedule::execute`].
    pub fn execute_flagged<A: Arith>(
        &self,
        ctx: &mut A,
        evidence: &problp_bayes::Evidence,
    ) -> Result<(A::Value, Flags), HwError> {
        if evidence.len() != self.var_arities.len() {
            return Err(HwError::EvidenceLengthMismatch {
                evidence: evidence.len(),
                netlist: self.var_arities.len(),
            });
        }
        for (var, state) in evidence.iter() {
            let arity = self.var_arities[var.index()];
            if state >= arity {
                return Err(HwError::MissingInputSlot {
                    var: var.index(),
                    state,
                    arity,
                });
            }
        }
        let consts: Vec<A::Value> = self.constants.iter().map(|&v| ctx.from_f64(v)).collect();
        Ok(self.execute_inner(ctx, evidence, &consts))
    }

    /// The instruction loop after input validation, with the constant ROM
    /// already converted (so batched callers convert it once, not per
    /// lane). Returns the result and the hardware-level flags.
    fn execute_inner<A: Arith>(
        &self,
        ctx: &mut A,
        evidence: &problp_bayes::Evidence,
        consts: &[A::Value],
    ) -> (A::Value, Flags) {
        let ins: Vec<A::Value> = self
            .inputs
            .iter()
            .map(|&(var, state)| ctx.from_f64(evidence.indicator(var, state)))
            .collect();
        let mut hw_flags = Flags::new();
        let mut regs: Vec<Option<A::Value>> = vec![None; self.register_count];
        let fetch = |regs: &[Option<A::Value>],
                     consts: &[A::Value],
                     ins: &[A::Value],
                     operand: Operand|
         -> A::Value {
            match operand {
                Operand::Const(i) => consts[i as usize].clone(),
                Operand::Input(i) => ins[i as usize].clone(),
                Operand::Reg(r) => regs[r as usize]
                    .clone()
                    .expect("register read before write"),
            }
        };
        for inst in &self.instructions {
            let a = fetch(&regs, consts, &ins, inst.a);
            let b = fetch(&regs, consts, &ins, inst.b);
            let v = match inst.op {
                HwOp::Add => ctx.add(&a, &b),
                HwOp::Mul => {
                    let v = ctx.mul(&a, &b);
                    if ctx.to_f64(&v) == 0.0 && ctx.to_f64(&a) != 0.0 && ctx.to_f64(&b) != 0.0 {
                        hw_flags.underflow = true;
                    }
                    v
                }
            };
            regs[inst.dst as usize] = Some(v);
        }
        (fetch(&regs, consts, &ins, self.output), hw_flags)
    }

    /// Executes the schedule once per lane of `batch`, in lane order —
    /// the sequential accelerator's counterpart of
    /// [`crate::PipelineSim::run_batch`] (one evaluation costs
    /// `instructions` cycles, so a batch costs `lanes × instructions`).
    ///
    /// # Errors
    ///
    /// Returns [`HwError::BatchLengthMismatch`] if the batch ranges over
    /// a different number of variables than the netlist, and
    /// [`HwError::MissingInputSlot`] if any lane observes a state with no
    /// indicator input word.
    pub fn execute_batch<A: Arith>(
        &self,
        ctx: &mut A,
        batch: &problp_bayes::EvidenceBatch,
    ) -> Result<Vec<A::Value>, HwError> {
        if batch.var_count() != self.var_arities.len() {
            return Err(HwError::BatchLengthMismatch {
                batch: batch.var_count(),
                netlist: self.var_arities.len(),
            });
        }
        for (var, &arity) in self.var_arities.iter().enumerate() {
            let col = batch.column(problp_bayes::VarId::from_index(var));
            if let Some(&bad) = col.iter().find(|&&s| s >= arity as i32) {
                return Err(HwError::MissingInputSlot {
                    var,
                    state: bad as usize,
                    arity,
                });
            }
        }
        // The constant ROM is converted once for the whole batch.
        let consts: Vec<A::Value> = self.constants.iter().map(|&v| ctx.from_f64(v)).collect();
        Ok((0..batch.lanes())
            .map(|lane| self.execute_inner(ctx, &batch.evidence(lane), &consts).0)
            .collect())
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Schedule[{}]({})", self.repr, self.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::PipelineSim;
    use problp_ac::{compile, transform::binarize, Semiring};
    use problp_bayes::{networks, Evidence, VarId};
    use problp_num::{FixedArith, FixedFormat, FloatArith, FloatFormat, Representation};

    fn fixed_setup(
        net: &problp_bayes::BayesNet,
        frac: u32,
    ) -> (problp_ac::AcGraph, Netlist, FixedFormat) {
        let ac = binarize(&compile(net).unwrap()).unwrap();
        let format = FixedFormat::new(1, frac).unwrap();
        let nl = Netlist::from_ac(&ac, Representation::Fixed(format)).unwrap();
        (ac, nl, format)
    }

    #[test]
    fn schedule_matches_parallel_hardware_bit_exactly() {
        let net = networks::sprinkler();
        let (_, nl, format) = fixed_setup(&net, 11);
        let schedule = Schedule::from_netlist(&nl).unwrap();
        for v in 0..net.var_count() {
            let mut e = Evidence::empty(net.var_count());
            e.observe(VarId::from_index(v), 1);
            let mut pipe = PipelineSim::new(&nl, FixedArith::new(format));
            let parallel = pipe.run(&e).unwrap();
            let mut ctx = FixedArith::new(format);
            let sequential = schedule.execute(&mut ctx, &e).unwrap();
            assert_eq!(parallel.raw(), sequential.raw(), "v={v}");
        }
    }

    #[test]
    fn schedule_matches_software_for_floats() {
        let net = networks::student();
        let ac = binarize(&compile(&net).unwrap()).unwrap();
        let format = FloatFormat::new(8, 13).unwrap();
        let nl = Netlist::from_ac(&ac, Representation::Float(format)).unwrap();
        let schedule = Schedule::from_netlist(&nl).unwrap();
        let mut e = Evidence::empty(net.var_count());
        e.observe(net.find("SAT").unwrap(), 1);
        let mut sw = FloatArith::new(format);
        let expect = ac.evaluate_with(&mut sw, &e, Semiring::SumProduct).unwrap();
        let mut ctx = FloatArith::new(format);
        let got = schedule.execute(&mut ctx, &e).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn instruction_count_equals_operator_count() {
        let net = networks::alarm(7);
        let (_, nl, _) = fixed_setup(&net, 14);
        let schedule = Schedule::from_netlist(&nl).unwrap();
        let hw = nl.stats();
        let sch = schedule.stats();
        assert_eq!(sch.instructions, hw.adds + hw.muls);
        assert_eq!(sch.adds, hw.adds);
        assert_eq!(sch.muls, hw.muls);
        assert_eq!(sch.constants, hw.constants);
        assert_eq!(sch.inputs, hw.inputs);
    }

    #[test]
    fn register_file_is_much_smaller_than_parallel_registers() {
        let net = networks::alarm(7);
        let (_, nl, _) = fixed_setup(&net, 14);
        let schedule = Schedule::from_netlist(&nl).unwrap();
        let registers = schedule.stats().registers;
        let parallel_regs = nl.stats().output_regs + nl.stats().balance_regs;
        assert!(
            registers * 10 < parallel_regs,
            "sequential {registers} vs parallel {parallel_regs}"
        );
    }

    #[test]
    fn registers_are_never_read_before_written() {
        // The allocator's correctness: execute panics on a read-before-
        // write, so a clean pass over every benchmark is the check.
        for net in [networks::figure1(), networks::asia(), networks::student()] {
            let (_, nl, format) = fixed_setup(&net, 10);
            let schedule = Schedule::from_netlist(&nl).unwrap();
            let mut ctx = FixedArith::new(format);
            let _ = schedule
                .execute(&mut ctx, &Evidence::empty(net.var_count()))
                .unwrap();
        }
    }

    #[test]
    fn degenerate_single_leaf_circuit() {
        let mut g = problp_ac::AcGraph::new(vec![2]);
        let p = g.param(0.75).unwrap();
        g.set_root(p);
        let nl =
            Netlist::from_ac(&g, Representation::Fixed(FixedFormat::new(1, 8).unwrap())).unwrap();
        let schedule = Schedule::from_netlist(&nl).unwrap();
        assert_eq!(schedule.stats().instructions, 0);
        let mut ctx = FixedArith::new(FixedFormat::new(1, 8).unwrap());
        let out = schedule.execute(&mut ctx, &Evidence::empty(1)).unwrap();
        assert_eq!(out.to_f64(), 0.75);
    }

    #[test]
    fn evidence_shape_is_checked() {
        let net = networks::figure1();
        let (_, nl, format) = fixed_setup(&net, 8);
        let schedule = Schedule::from_netlist(&nl).unwrap();
        let mut ctx = FixedArith::new(format);
        assert!(matches!(
            schedule.execute(&mut ctx, &Evidence::empty(42)),
            Err(HwError::EvidenceLengthMismatch { .. })
        ));
    }
}
