//! Cycle-accurate simulation of the generated pipelined datapath.
//!
//! The simulator models every operator output register and every
//! balancing register explicitly, clocking the whole netlist once per
//! [`PipelineSim::step`]. It validates the two properties the paper's
//! hardware generator must guarantee:
//!
//! * **latency** — an input vector's result appears at the output exactly
//!   `pipeline_depth` cycles later;
//! * **throughput** — a new input vector can be applied *every* cycle and
//!   the results stream out in order, bit-exact with the software
//!   low-precision evaluation of the same circuit.
//!
//! Within this repository the simulator is the stand-in for Verilog
//! simulation of the emitted RTL (`DESIGN.md`, substitution 4): it
//! executes the same structure the Verilog describes with the same
//! rounding semantics (`problp-num`).

use std::collections::VecDeque;

use problp_bayes::{Evidence, EvidenceBatch};
use problp_num::{Arith, Flags};

use crate::error::HwError;
use crate::netlist::{CellKind, HwOp, Netlist};

/// One cycle's input vector: either a scalar [`Evidence`] or one lane of
/// a columnar [`EvidenceBatch`] (the batched driver feeds the pipeline
/// straight from the batch's columns, no per-lane materialisation).
#[derive(Clone, Copy)]
enum LaneInput<'a> {
    Evidence(&'a Evidence),
    BatchLane(&'a EvidenceBatch, usize),
}

impl LaneInput<'_> {
    /// The indicator value `λ_{var = state}` this input presents.
    fn indicator(&self, var: problp_bayes::VarId, state: usize) -> f64 {
        match self {
            LaneInput::Evidence(e) => e.indicator(var, state),
            LaneInput::BatchLane(b, lane) => b.indicator(*lane, var, state),
        }
    }
}

/// Checks one observation against the netlist's indicator slots: a state
/// outside `0..arity` has no slot, so every indicator of that variable
/// would read 0 and the datapath would emit a silent zero.
fn check_slot(var: usize, state: usize, arities: &[usize]) -> Result<(), HwError> {
    let arity = arities[var];
    if state >= arity {
        return Err(HwError::MissingInputSlot { var, state, arity });
    }
    Ok(())
}

/// A running simulation of a [`Netlist`] in the arithmetic `A`.
///
/// Pipeline slots that have not been filled yet hold `None` (the `x`
/// values of an RTL simulation).
///
/// # Examples
///
/// ```
/// use problp_ac::{compile, transform::binarize};
/// use problp_bayes::{networks, Evidence};
/// use problp_hw::{Netlist, PipelineSim};
/// use problp_num::{Arith, FixedArith, FixedFormat, Representation};
///
/// let net = networks::figure1();
/// let ac = binarize(&compile(&net)?)?;
/// let format = FixedFormat::new(1, 11)?;
/// let nl = Netlist::from_ac(&ac, Representation::Fixed(format))?;
///
/// let mut sim = PipelineSim::new(&nl, FixedArith::new(format));
/// let e = Evidence::empty(net.var_count());
/// let out = sim.run(&e)?; // clocks depth cycles
/// let value = sim.context().to_f64(&out);
/// assert!((value - 1.0).abs() < 0.01);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct PipelineSim<'n, A: Arith> {
    netlist: &'n Netlist,
    ctx: A,
    /// Output register of each operator cell (`None` for leaves and for
    /// slots not yet filled).
    regs: Vec<Option<A::Value>>,
    /// Balancing-register chains, one per operator operand with a
    /// non-zero delay: `(op_cell, operand_index)` order.
    fifos: Vec<VecDeque<Option<A::Value>>>,
    /// For each operator cell, the fifo indices of its two operands
    /// (`usize::MAX` when the edge has no delay).
    fifo_of: Vec<[usize; 2]>,
    /// Pre-converted constant leaf values.
    constants: Vec<Option<A::Value>>,
    cycle: u64,
    /// Hardware-level sticky flags (multiplier underflow-to-zero), kept
    /// separate from the arithmetic context's own rounding flags.
    hw_flags: Flags,
    /// How many multiplier underflow-to-zero events occurred — the
    /// sticky `hw_flags.underflow` bit says *whether* a lane vanished,
    /// this counts *how often* (the telemetry layer exports it as an
    /// event counter).
    underflow_events: u64,
}

impl<'n, A: Arith> PipelineSim<'n, A> {
    /// Prepares a simulation of `netlist` in the arithmetic `ctx`.
    ///
    /// # Panics
    ///
    /// Panics if `ctx`'s format disagrees with the netlist's word width
    /// (cannot happen when both are constructed from the same
    /// [`problp_num::Representation`]).
    pub fn new(netlist: &'n Netlist, mut ctx: A) -> Self {
        let n = netlist.cells().len();
        let mut fifos = Vec::new();
        let mut fifo_of = vec![[usize::MAX, usize::MAX]; n];
        let mut constants: Vec<Option<A::Value>> = vec![None; n];
        for (i, cell) in netlist.cells().iter().enumerate() {
            match &cell.kind {
                CellKind::Constant { value } => {
                    constants[i] = Some(ctx.from_f64(*value));
                }
                CellKind::Op { a, b, .. } => {
                    for (slot, operand) in [a, b].into_iter().enumerate() {
                        let delay =
                            netlist.edge_delay(*operand, crate::netlist::CellId::from_index(i));
                        if delay > 0 {
                            fifo_of[i][slot] = fifos.len();
                            fifos.push(VecDeque::from(vec![None; delay as usize]));
                        }
                    }
                }
                CellKind::Input { .. } => {}
            }
        }
        PipelineSim {
            netlist,
            ctx,
            regs: vec![None; n],
            fifos,
            fifo_of,
            constants,
            cycle: 0,
            hw_flags: Flags::new(),
            underflow_events: 0,
        }
    }

    /// The arithmetic context (for reading flags or converting values).
    pub fn context(&self) -> &A {
        &self.ctx
    }

    /// Clock cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The sticky status flags of the simulation so far: the arithmetic
    /// context's rounding/overflow flags merged with the hardware-level
    /// flags the simulator raises itself (`underflow` when a multiplier
    /// with two non-zero operands produced a zero — a lane silently
    /// vanishing below the representation's resolution).
    pub fn flags(&self) -> Flags {
        let mut f = self.ctx.flags();
        f.merge(self.hw_flags);
        f
    }

    /// How many multiplier underflow-to-zero events the simulation has
    /// raised so far — the event count behind the sticky
    /// `underflow` bit of [`PipelineSim::flags`], so telemetry can
    /// export a rate rather than a single latched bit.
    pub fn underflow_events(&self) -> u64 {
        self.underflow_events
    }

    /// The current value of a leaf for this cycle's input vector (`None`
    /// for a bubble).
    fn leaf_value(&mut self, index: usize, inputs: Option<LaneInput<'_>>) -> Option<A::Value> {
        let netlist = self.netlist;
        match &netlist.cells()[index].kind {
            CellKind::Constant { .. } => self.constants[index].clone(),
            CellKind::Input { var, state } => {
                inputs.map(|lane| self.ctx.from_f64(lane.indicator(*var, *state)))
            }
            CellKind::Op { .. } => unreachable!("leaf_value on an operator"),
        }
    }

    /// The value a cell presents to its consumers during this cycle
    /// (before the clock edge): leaves present this cycle's input,
    /// operators present their output register.
    fn present(&mut self, index: usize, inputs: Option<LaneInput<'_>>) -> Option<A::Value> {
        let netlist = self.netlist;
        match &netlist.cells()[index].kind {
            CellKind::Op { .. } => self.regs[index].clone(),
            _ => self.leaf_value(index, inputs),
        }
    }

    /// Advances the pipeline by one clock cycle, applying `inputs` (or a
    /// bubble when `None`). Returns the output register's value *after*
    /// the clock edge.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::EvidenceLengthMismatch`] if the evidence shape
    /// disagrees with the netlist, and [`HwError::MissingInputSlot`] if
    /// it observes a state outside its variable's indicator slots.
    pub fn step(&mut self, inputs: Option<&Evidence>) -> Result<Option<A::Value>, HwError> {
        if let Some(e) = inputs {
            if e.len() != self.netlist.var_arities().len() {
                return Err(HwError::EvidenceLengthMismatch {
                    evidence: e.len(),
                    netlist: self.netlist.var_arities().len(),
                });
            }
            for (var, state) in e.iter() {
                check_slot(var.index(), state, self.netlist.var_arities())?;
            }
        }
        self.step_lane(inputs.map(LaneInput::Evidence))
    }

    /// [`PipelineSim::step`] after input validation: inputs here are
    /// already known to match the netlist's shape and slots.
    fn step_lane(&mut self, inputs: Option<LaneInput<'_>>) -> Result<Option<A::Value>, HwError> {
        let netlist = self.netlist;
        let n = netlist.cells().len();
        // Phase 1: read all present values (pre-edge state).
        let mut presented: Vec<Option<A::Value>> = Vec::with_capacity(n);
        for i in 0..n {
            presented.push(self.present(i, inputs));
        }
        // Phase 2: compute next register values and shift delay chains.
        let mut next_regs = self.regs.clone();
        for (i, cell) in netlist.cells().iter().enumerate() {
            if let CellKind::Op { op, a, b } = &cell.kind {
                let operand = |sim: &mut Self, slot: usize, src: usize| -> Option<A::Value> {
                    let fid = sim.fifo_of[i][slot];
                    if fid == usize::MAX {
                        presented[src].clone()
                    } else {
                        let fifo = &mut sim.fifos[fid];
                        fifo.push_back(presented[src].clone());
                        fifo.pop_front().expect("fifo never empty")
                    }
                };
                let va = operand(self, 0, a.index());
                let vb = operand(self, 1, b.index());
                next_regs[i] = match (va, vb) {
                    (Some(x), Some(y)) => Some(match op {
                        HwOp::Add => self.ctx.add(&x, &y),
                        HwOp::Mul => {
                            let v = self.ctx.mul(&x, &y);
                            // A multiplier whose two non-zero operands
                            // produce zero has silently dropped the lane
                            // below the representation's resolution —
                            // surface it as a sticky underflow instead of
                            // letting the zero propagate unremarked.
                            if self.ctx.to_f64(&v) == 0.0
                                && self.ctx.to_f64(&x) != 0.0
                                && self.ctx.to_f64(&y) != 0.0
                            {
                                self.hw_flags.underflow = true;
                                self.underflow_events += 1;
                            }
                            v
                        }
                    }),
                    _ => None,
                };
            }
        }
        self.regs = next_regs;
        self.cycle += 1;
        let out = netlist.output().index();
        Ok(match &netlist.cells()[out].kind {
            // Degenerate netlists whose output is a leaf have no register.
            CellKind::Op { .. } => self.regs[out].clone(),
            _ => presented[out].clone(),
        })
    }

    /// Applies one input vector and clocks the pipeline until its result
    /// reaches the output (`pipeline_depth` cycles), returning it.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::EvidenceLengthMismatch`] on a shape mismatch.
    pub fn run(&mut self, inputs: &Evidence) -> Result<A::Value, HwError> {
        let depth = self.netlist.pipeline_depth().max(1);
        let mut last = self.step(Some(inputs))?;
        for _ in 1..depth {
            last = self.step(None)?;
        }
        Ok(last.expect("result must be valid after pipeline_depth cycles"))
    }

    /// Streams a whole [`EvidenceBatch`] through the pipeline at full
    /// throughput — one lane issued per cycle, results collected in lane
    /// order as they emerge `pipeline_depth` cycles later — and returns
    /// the per-lane outputs.
    ///
    /// This is the batched driver of the differential conformance harness
    /// (`problp-conformance`): where [`PipelineSim::run`] drains the
    /// pipeline between inputs (`depth` cycles per lane), `run_batch`
    /// exploits the design's streaming throughput and finishes `lanes`
    /// results in `lanes + depth - 1` cycles.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::BatchLengthMismatch`] if the batch ranges over
    /// a different number of variables than the netlist, and
    /// [`HwError::MissingInputSlot`] if any lane observes a state with no
    /// indicator input slot.
    pub fn run_batch(&mut self, batch: &EvidenceBatch) -> Result<Vec<A::Value>, HwError> {
        let arities = self.netlist.var_arities();
        if batch.var_count() != arities.len() {
            return Err(HwError::BatchLengthMismatch {
                batch: batch.var_count(),
                netlist: arities.len(),
            });
        }
        for (var, &arity) in arities.iter().enumerate() {
            let col = batch.column(problp_bayes::VarId::from_index(var));
            if let Some(&bad) = col.iter().find(|&&s| s >= arity as i32) {
                return Err(HwError::MissingInputSlot {
                    var,
                    state: bad as usize,
                    arity,
                });
            }
        }
        let lanes = batch.lanes();
        if lanes == 0 {
            return Ok(Vec::new());
        }
        let depth = self.netlist.pipeline_depth().max(1) as usize;
        let mut out = Vec::with_capacity(lanes);
        for cycle in 1..=(lanes + depth - 1) {
            let inputs = (cycle <= lanes).then(|| LaneInput::BatchLane(batch, cycle - 1));
            let o = self.step_lane(inputs)?;
            if cycle >= depth {
                out.push(o.expect("result must be valid pipeline_depth cycles after its input"));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use problp_ac::{compile, transform::binarize, Semiring};
    use problp_bayes::{networks, VarId};
    use problp_num::{FixedArith, FixedFormat, FloatArith, FloatFormat, Representation};

    fn fixed_setup(
        net: &problp_bayes::BayesNet,
        frac: u32,
    ) -> (problp_ac::AcGraph, Netlist, FixedFormat) {
        let ac = binarize(&compile(net).unwrap()).unwrap();
        let format = FixedFormat::new(1, frac).unwrap();
        let nl = Netlist::from_ac(&ac, Representation::Fixed(format)).unwrap();
        (ac, nl, format)
    }

    #[test]
    fn single_result_matches_software_evaluation_bit_exactly() {
        let net = networks::sprinkler();
        let (ac, nl, format) = fixed_setup(&net, 11);
        for v in 0..net.var_count() {
            for s in 0..2 {
                let mut e = Evidence::empty(net.var_count());
                e.observe(VarId::from_index(v), s);
                let mut sw = FixedArith::new(format);
                let expect = ac.evaluate_with(&mut sw, &e, Semiring::SumProduct).unwrap();
                let mut sim = PipelineSim::new(&nl, FixedArith::new(format));
                let got = sim.run(&e).unwrap();
                assert_eq!(got.raw(), expect.raw(), "v={v} s={s}");
            }
        }
    }

    #[test]
    fn float_datapath_matches_software_bit_exactly() {
        let net = networks::student();
        let ac = binarize(&compile(&net).unwrap()).unwrap();
        let format = FloatFormat::new(8, 13).unwrap();
        let nl = Netlist::from_ac(&ac, Representation::Float(format)).unwrap();
        let mut e = Evidence::empty(net.var_count());
        e.observe(net.find("Grade").unwrap(), 1);
        let mut sw = FloatArith::new(format);
        let expect = ac.evaluate_with(&mut sw, &e, Semiring::SumProduct).unwrap();
        let mut sim = PipelineSim::new(&nl, FloatArith::new(format));
        let got = sim.run(&e).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn results_take_exactly_pipeline_depth_cycles() {
        let net = networks::figure1();
        let (_, nl, format) = fixed_setup(&net, 9);
        let depth = nl.pipeline_depth();
        assert!(depth >= 2);
        let e = Evidence::empty(net.var_count());
        let mut sim = PipelineSim::new(&nl, FixedArith::new(format));
        // Result must NOT be valid one cycle early.
        let mut out = sim.step(Some(&e)).unwrap();
        for _ in 1..depth - 1 {
            out = sim.step(None).unwrap();
        }
        assert!(out.is_none(), "result appeared before {depth} cycles");
        let out = sim.step(None).unwrap();
        assert!(out.is_some(), "result must appear at cycle {depth}");
    }

    #[test]
    fn pipeline_streams_one_result_per_cycle() {
        let net = networks::sprinkler();
        let (ac, nl, format) = fixed_setup(&net, 11);
        let depth = nl.pipeline_depth() as usize;
        // Build a stream of distinct evidences.
        let evidences: Vec<Evidence> = (0..6)
            .map(|k| {
                let mut e = Evidence::empty(net.var_count());
                e.observe(VarId::from_index(k % 4), k % 2);
                e
            })
            .collect();
        let expected: Vec<u128> = evidences
            .iter()
            .map(|e| {
                let mut sw = FixedArith::new(format);
                ac.evaluate_with(&mut sw, e, Semiring::SumProduct)
                    .unwrap()
                    .raw()
            })
            .collect();
        let mut sim = PipelineSim::new(&nl, FixedArith::new(format));
        let mut outputs = Vec::new();
        // Feed one evidence per cycle, then drain the pipeline.
        for e in &evidences {
            outputs.push(sim.step(Some(e)).unwrap());
        }
        for _ in 0..depth {
            outputs.push(sim.step(None).unwrap());
        }
        // outputs[depth - 1 + k] is the result of evidence k.
        for (k, expect) in expected.iter().enumerate() {
            let got = outputs[depth - 1 + k]
                .as_ref()
                .unwrap_or_else(|| panic!("missing result {k}"));
            assert_eq!(got.raw(), *expect, "stream position {k}");
        }
    }

    #[test]
    fn bubbles_produce_invalid_outputs() {
        let net = networks::figure1();
        let (_, nl, format) = fixed_setup(&net, 9);
        let mut sim = PipelineSim::new(&nl, FixedArith::new(format));
        let e = Evidence::empty(net.var_count());
        let depth = nl.pipeline_depth();
        let _ = sim.run(&e).unwrap();
        // After draining with bubbles, outputs go invalid again.
        let mut out = None;
        for _ in 0..depth {
            out = sim.step(None).unwrap();
        }
        assert!(out.is_none(), "bubble should have reached the output");
    }

    #[test]
    fn evidence_shape_is_checked() {
        let net = networks::figure1();
        let (_, nl, format) = fixed_setup(&net, 9);
        let mut sim = PipelineSim::new(&nl, FixedArith::new(format));
        let bad = Evidence::empty(17);
        assert!(matches!(
            sim.step(Some(&bad)).unwrap_err(),
            HwError::EvidenceLengthMismatch { .. }
        ));
    }

    #[test]
    fn run_batch_streams_one_lane_per_cycle() {
        use problp_bayes::EvidenceBatch;
        let net = networks::sprinkler();
        let (ac, nl, format) = fixed_setup(&net, 11);
        let evidences: Vec<Evidence> = (0..9)
            .map(|k| {
                let mut e = Evidence::empty(net.var_count());
                e.observe(VarId::from_index(k % 4), k % 2);
                e
            })
            .collect();
        let batch = EvidenceBatch::from_evidences(net.var_count(), &evidences).unwrap();
        let mut sim = PipelineSim::new(&nl, FixedArith::new(format));
        let before = sim.cycle();
        let got = sim.run_batch(&batch).unwrap();
        // Full streaming throughput: lanes + depth - 1 cycles total.
        assert_eq!(
            sim.cycle() - before,
            batch.lanes() as u64 + u64::from(nl.pipeline_depth()) - 1
        );
        assert_eq!(got.len(), evidences.len());
        for (e, v) in evidences.iter().zip(&got) {
            let mut sw = FixedArith::new(format);
            let expect = ac.evaluate_with(&mut sw, e, Semiring::SumProduct).unwrap();
            assert_eq!(v.raw(), expect.raw(), "lane {e}");
        }
        // And an empty batch is a no-op.
        assert!(sim
            .run_batch(&EvidenceBatch::new(net.var_count()))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn run_batch_checks_batch_shape() {
        use problp_bayes::EvidenceBatch;
        let net = networks::figure1();
        let (_, nl, format) = fixed_setup(&net, 9);
        let mut sim = PipelineSim::new(&nl, FixedArith::new(format));
        assert!(matches!(
            sim.run_batch(&EvidenceBatch::new(17)).unwrap_err(),
            HwError::BatchLengthMismatch { .. }
        ));
    }

    #[test]
    fn alarm_netlist_simulates_correctly() {
        let net = networks::alarm(7);
        let (ac, nl, format) = fixed_setup(&net, 14);
        let mut e = Evidence::empty(net.var_count());
        e.observe(net.find("HRBP").unwrap(), 1);
        e.observe(net.find("BP").unwrap(), 0);
        let mut sw = FixedArith::new(format);
        let expect = ac.evaluate_with(&mut sw, &e, Semiring::SumProduct).unwrap();
        let mut sim = PipelineSim::new(&nl, FixedArith::new(format));
        let got = sim.run(&e).unwrap();
        assert_eq!(got.raw(), expect.raw());
    }
}
