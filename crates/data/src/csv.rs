//! CSV import/export for labeled datasets.
//!
//! A minimal, dependency-free CSV dialect for exchanging benchmark data:
//! one instance per line, features first and the class label last, with
//! an optional `#`-prefixed header describing the arities:
//!
//! ```text
//! # arities: 4 4 4, classes: 2
//! 0,2,1,3,0
//! 1,1,0,2,1
//! ```

use problp_bayes::{BayesError, LabeledDataset};

/// Serializes a dataset to the CSV dialect above (with the arity header).
///
/// # Examples
///
/// ```
/// use problp_data::{csv, uiwads_like};
///
/// let ds = uiwads_like(1);
/// let text = csv::to_csv(&ds);
/// let back = csv::from_csv(&text)?;
/// assert_eq!(back, ds);
/// # Ok::<(), problp_bayes::BayesError>(())
/// ```
pub fn to_csv(dataset: &LabeledDataset) -> String {
    let mut out = String::new();
    let arities: Vec<String> = dataset
        .feature_arities()
        .iter()
        .map(|a| a.to_string())
        .collect();
    out.push_str(&format!(
        "# arities: {}, classes: {}\n",
        arities.join(" "),
        dataset.class_arity()
    ));
    for i in 0..dataset.len() {
        let (row, label) = dataset.instance(i);
        let mut fields: Vec<String> = row.iter().map(|s| s.to_string()).collect();
        fields.push(label.to_string());
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

/// Parses the CSV dialect above. Without a header, arities are inferred
/// as `max(state) + 1` per column (with a floor of 2).
///
/// # Errors
///
/// Returns [`BayesError::InvalidDataset`] for malformed lines or
/// validation failures.
pub fn from_csv(text: &str) -> Result<LabeledDataset, BayesError> {
    let mut feature_arities: Option<Vec<usize>> = None;
    let mut class_arity: Option<usize> = None;
    let mut features: Vec<Vec<usize>> = Vec::new();
    let mut labels: Vec<usize> = Vec::new();
    let bad = |line_no: usize, reason: &str| BayesError::InvalidDataset {
        reason: format!("csv line {}: {reason}", line_no + 1),
    };
    for (line_no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('#') {
            // "# arities: 4 4 4, classes: 2"
            if let Some(rest) = header.trim().strip_prefix("arities:") {
                let (arities_part, classes_part) = rest
                    .split_once(',')
                    .ok_or_else(|| bad(line_no, "header needs ', classes:'"))?;
                let arities = arities_part
                    .split_whitespace()
                    .map(|t| t.parse::<usize>().map_err(|_| bad(line_no, "bad arity")))
                    .collect::<Result<Vec<_>, _>>()?;
                let classes = classes_part
                    .trim()
                    .strip_prefix("classes:")
                    .and_then(|c| c.trim().parse::<usize>().ok())
                    .ok_or_else(|| bad(line_no, "bad class count"))?;
                feature_arities = Some(arities);
                class_arity = Some(classes);
            }
            continue;
        }
        let fields = line
            .split(',')
            .map(|t| {
                t.trim()
                    .parse::<usize>()
                    .map_err(|_| bad(line_no, &format!("bad field {t}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        if fields.len() < 2 {
            return Err(bad(line_no, "need at least one feature and a label"));
        }
        let (label, row) = fields.split_last().expect("checked length");
        features.push(row.to_vec());
        labels.push(*label);
    }
    if features.is_empty() {
        return Err(BayesError::InvalidDataset {
            reason: "csv has no data rows".into(),
        });
    }
    let width = features[0].len();
    let feature_arities = feature_arities.unwrap_or_else(|| {
        (0..width)
            .map(|j| {
                features
                    .iter()
                    .map(|row| row[j] + 1)
                    .max()
                    .unwrap_or(2)
                    .max(2)
            })
            .collect()
    });
    let class_arity =
        class_arity.unwrap_or_else(|| labels.iter().map(|&l| l + 1).max().unwrap_or(2).max(2));
    LabeledDataset::new(features, labels, feature_arities, class_arity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{har_like, uiwads_like};

    #[test]
    fn roundtrip_preserves_everything() {
        for ds in [uiwads_like(3), har_like(3)] {
            let back = from_csv(&to_csv(&ds)).unwrap();
            assert_eq!(back, ds);
        }
    }

    #[test]
    fn headerless_csv_infers_arities() {
        let ds = from_csv("0,1,0\n1,0,1\n2,1,0\n").unwrap();
        assert_eq!(ds.feature_arities(), &[3, 2]);
        assert_eq!(ds.class_arity(), 2);
        assert_eq!(ds.len(), 3);
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        let err = from_csv("0,1\nx,1\n").unwrap_err();
        assert!(err.to_string().contains("line 2"));
        let err = from_csv("5\n").unwrap_err();
        assert!(err.to_string().contains("at least one feature"));
        assert!(from_csv("").is_err());
    }

    #[test]
    fn header_overrides_inference() {
        let ds = from_csv("# arities: 4 4, classes: 3\n0,1,0\n").unwrap();
        assert_eq!(ds.feature_arities(), &[4, 4]);
        assert_eq!(ds.class_arity(), 3);
    }

    #[test]
    fn out_of_range_states_fail_validation() {
        let err = from_csv("# arities: 2 2, classes: 2\n0,5,0\n").unwrap_err();
        assert!(matches!(err, BayesError::InvalidDataset { .. }));
    }
}
