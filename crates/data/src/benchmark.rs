//! The paper's four evaluation benchmarks, packaged for experiments.
//!
//! Each [`Benchmark`] bundles a trained Bayesian network, the query
//! variable `q`, the evidence variables `e`, and a test set of evidence
//! assignments — exactly the experimental setting of paper §4: "the leaf
//! nodes of the BN were used as evidence nodes e and one of the root
//! nodes in the BN (the class node in the case of the classifiers) as a
//! query node q".

use problp_bayes::{networks, BayesNet, Evidence, LabeledDataset, NaiveBayes, VarId};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::generator::{har_like, uiwads_like, unimib_like};

/// A packaged evaluation benchmark.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Benchmark name ("HAR", "UNIMIB", "UIWADS", "Alarm").
    pub name: String,
    /// The trained network.
    pub net: BayesNet,
    /// The query variable `q` (the class / a root node).
    pub query_var: VarId,
    /// The evidence variables `e` (classifier features / BN leaves).
    pub evidence_vars: Vec<VarId>,
    /// Test-set evidence assignments (observations of `evidence_vars`).
    pub test_evidence: Vec<Evidence>,
    /// Test-set labels (states of `query_var`), when known.
    pub test_labels: Option<Vec<usize>>,
    /// The raw labeled test split, for classifier benchmarks — row `i`
    /// corresponds to `test_evidence[i]`/`test_labels[i]`. This is the
    /// input `EvidenceBatch::from_dataset` packs for the engine-served
    /// accuracy studies in `problp-bench`.
    pub test_dataset: Option<problp_bayes::LabeledDataset>,
}

impl Benchmark {
    /// Number of test instances.
    pub fn test_len(&self) -> usize {
        self.test_evidence.len()
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} with {} test instances",
            self.name,
            self.net,
            self.test_len()
        )
    }
}

/// Builds a classifier benchmark: trains naive Bayes on 60 % of the data
/// (paper §4) and turns the remaining 40 % into test evidences.
fn classifier_benchmark(name: &str, dataset: &LabeledDataset) -> Benchmark {
    let (train, test) = dataset.split(0.6);
    let nb = NaiveBayes::fit(&train, 1.0).expect("training data is valid");
    let query_var = nb.class_var();
    let evidence_vars = nb.feature_vars().to_vec();
    let var_count = nb.network().var_count();
    let mut test_evidence = Vec::with_capacity(test.len());
    let mut labels = Vec::with_capacity(test.len());
    for i in 0..test.len() {
        let (row, label) = test.instance(i);
        let mut e = Evidence::empty(var_count);
        for (j, &fv) in evidence_vars.iter().enumerate() {
            e.observe(fv, row[j]);
        }
        test_evidence.push(e);
        labels.push(label);
    }
    Benchmark {
        name: name.to_string(),
        net: nb.into_network(),
        query_var,
        evidence_vars,
        test_evidence,
        test_labels: Some(labels),
        test_dataset: Some(test),
    }
}

/// The HAR-like benchmark (6-class activity recognition).
pub fn har_benchmark(seed: u64) -> Benchmark {
    classifier_benchmark("HAR", &har_like(seed))
}

/// The UniMiB-SHAR-like benchmark (9-class activity recognition).
pub fn unimib_benchmark(seed: u64) -> Benchmark {
    classifier_benchmark("UNIMIB", &unimib_like(seed))
}

/// The UIWADS-like benchmark (binary user verification).
pub fn uiwads_benchmark(seed: u64) -> Benchmark {
    classifier_benchmark("UIWADS", &uiwads_like(seed))
}

/// The Alarm benchmark: the 37-node patient-monitoring network with a
/// test set of `instances` forward samples (the paper uses 1000),
/// evidence on the BN's leaf variables and query on the root
/// `HYPOVOLEMIA`.
pub fn alarm_benchmark(seed: u64, instances: usize) -> Benchmark {
    let net = networks::alarm(seed);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x5EED));
    let leaves = net.leaves();
    let query_var = net.find("HYPOVOLEMIA").expect("alarm has HYPOVOLEMIA");
    let mut test_evidence = Vec::with_capacity(instances);
    let mut labels = Vec::with_capacity(instances);
    for _ in 0..instances {
        let sample = net.sample(&mut rng);
        let mut e = Evidence::empty(net.var_count());
        for &leaf in &leaves {
            e.observe(leaf, sample[leaf.index()]);
        }
        test_evidence.push(e);
        labels.push(sample[query_var.index()]);
    }
    Benchmark {
        name: "Alarm".to_string(),
        net,
        query_var,
        evidence_vars: leaves,
        test_evidence,
        test_labels: Some(labels),
        test_dataset: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifier_benchmarks_have_consistent_shapes() {
        for bench in [uiwads_benchmark(3), unimib_benchmark(3)] {
            assert!(bench.test_len() > 100);
            assert_eq!(bench.test_labels.as_ref().unwrap().len(), bench.test_len());
            // Evidence observes exactly the feature variables.
            for e in bench.test_evidence.iter().take(20) {
                assert_eq!(e.observed_count(), bench.evidence_vars.len());
                assert_eq!(e.state(bench.query_var), None);
            }
        }
    }

    #[test]
    fn alarm_benchmark_observes_the_leaves() {
        let bench = alarm_benchmark(7, 50);
        assert_eq!(bench.test_len(), 50);
        assert_eq!(bench.net.var_count(), 37);
        assert_eq!(bench.evidence_vars.len(), bench.net.leaves().len());
        assert!(
            bench.evidence_vars.len() >= 8,
            "alarm has many leaf sensors"
        );
        for e in &bench.test_evidence {
            assert_eq!(e.observed_count(), bench.evidence_vars.len());
            assert_eq!(e.state(bench.query_var), None);
        }
    }

    #[test]
    fn classifier_test_dataset_aligns_with_the_evidences() {
        let bench = uiwads_benchmark(5);
        let ds = bench.test_dataset.as_ref().expect("classifier dataset");
        assert_eq!(ds.len(), bench.test_len());
        assert_eq!(ds.labels(), &bench.test_labels.clone().unwrap()[..]);
        for (i, row) in ds.features().iter().enumerate().take(25) {
            for (j, &fv) in bench.evidence_vars.iter().enumerate() {
                assert_eq!(bench.test_evidence[i].state(fv), Some(row[j]));
            }
        }
    }

    #[test]
    fn query_var_is_a_root() {
        let bench = alarm_benchmark(7, 5);
        assert!(bench.net.roots().contains(&bench.query_var));
        let uiwads = uiwads_benchmark(3);
        assert!(uiwads.net.roots().contains(&uiwads.query_var));
    }

    #[test]
    fn benchmarks_are_deterministic() {
        let a = uiwads_benchmark(9);
        let b = uiwads_benchmark(9);
        assert_eq!(a.net, b.net);
        assert_eq!(a.test_evidence, b.test_evidence);
    }

    #[test]
    fn relative_circuit_scales_follow_the_paper() {
        // HAR's network must dwarf UniMiB's, which dwarfs UIWADS's —
        // that ordering drives the energy ordering of Table 2.
        let har = har_benchmark(1);
        let unimib = unimib_benchmark(1);
        let uiwads = uiwads_benchmark(1);
        let params = |b: &Benchmark| b.net.parameter_count();
        assert!(params(&har) > 4 * params(&unimib));
        assert!(params(&unimib) > 2 * params(&uiwads));
    }
}
