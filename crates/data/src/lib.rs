//! # problp-data — benchmark data for ProbLP
//!
//! Seeded synthetic stand-ins for the paper's embedded-sensing datasets
//! (HAR, UniMiB-SHAR, UIWADS — see `DESIGN.md`, substitution 2) and the
//! packaged evaluation [`Benchmark`]s of paper §4, including the Alarm
//! patient-monitoring benchmark with its 1000-sample test set.
//!
//! # Examples
//!
//! ```
//! use problp_data::{har_like, uiwads_benchmark};
//! use problp_bayes::NaiveBayes;
//!
//! // Raw dataset access:
//! let ds = har_like(42);
//! let (train, test) = ds.split(0.6);
//! let nb = NaiveBayes::fit(&train, 1.0)?;
//! assert!(nb.accuracy(&test) > 0.4);
//!
//! // Or the packaged benchmark (network + query + test evidences):
//! let bench = uiwads_benchmark(42);
//! assert_eq!(bench.name, "UIWADS");
//! # Ok::<(), problp_bayes::BayesError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod benchmark;
pub mod csv;
mod generator;

pub use benchmark::{
    alarm_benchmark, har_benchmark, uiwads_benchmark, unimib_benchmark, Benchmark,
};
pub use generator::{har_like, synthetic_sensor_dataset, uiwads_like, unimib_like, SensorSpec};
