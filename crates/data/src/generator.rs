//! Seeded synthetic embedded-sensing datasets.
//!
//! The paper evaluates on three smartphone datasets (HAR, UniMiB-SHAR,
//! UIWADS) that are not redistributable here; these generators are the
//! documented stand-ins (DESIGN.md, substitution 2). Each mimics its
//! benchmark's *task structure* — class count, feature-space size, and a
//! per-class Gaussian sensor model discretized into bins — so that the
//! naive-Bayes classifiers trained on them yield arithmetic circuits of
//! comparable relative scale (HAR ≫ UniMiB ≫ UIWADS).

use problp_bayes::rngutil::normal;
use problp_bayes::LabeledDataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape parameters of a synthetic sensor dataset.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SensorSpec {
    /// Number of activity/user classes.
    pub classes: usize,
    /// Number of discretized sensor features.
    pub features: usize,
    /// Number of discretization bins per feature.
    pub bins: usize,
    /// Number of instances to generate.
    pub instances: usize,
    /// Class separation: how far per-class feature means spread, in bins
    /// (larger = easier classification).
    pub separation: f64,
}

/// Generates a synthetic sensor dataset: per class and feature a Gaussian
/// mean is drawn, instances sample the Gaussian and are clamped into
/// discretization bins.
///
/// The same seed always yields the same dataset.
///
/// # Panics
///
/// Panics if any shape parameter is zero or `classes < 2`.
pub fn synthetic_sensor_dataset(seed: u64, spec: SensorSpec) -> LabeledDataset {
    assert!(spec.classes >= 2, "need at least two classes");
    assert!(spec.features >= 1, "need at least one feature");
    assert!(spec.bins >= 2, "need at least two bins");
    assert!(spec.instances >= spec.classes, "need instances per class");
    let mut rng = StdRng::seed_from_u64(seed);
    // Per-class, per-feature sensor model.
    let mut means = vec![vec![0.0f64; spec.features]; spec.classes];
    let mut devs = vec![vec![0.0f64; spec.features]; spec.classes];
    for c in 0..spec.classes {
        for f in 0..spec.features {
            means[c][f] = rng.random_range(0.0..spec.bins as f64)
                + spec.separation * (c as f64 / spec.classes as f64 - 0.5);
            devs[c][f] = rng.random_range(0.6..1.6);
        }
    }
    let mut features = Vec::with_capacity(spec.instances);
    let mut labels = Vec::with_capacity(spec.instances);
    for i in 0..spec.instances {
        // Round-robin class assignment keeps classes balanced; the order
        // is then effectively shuffled by the 60/40 split being seeded.
        let c = if i < spec.classes {
            i // guarantee every class appears in any prefix split
        } else {
            rng.random_range(0..spec.classes)
        };
        let mut row = Vec::with_capacity(spec.features);
        for f in 0..spec.features {
            let x = normal(&mut rng, means[c][f], devs[c][f]);
            let bin = (x.floor().max(0.0) as usize).min(spec.bins - 1);
            row.push(bin);
        }
        features.push(row);
        labels.push(c);
    }
    LabeledDataset::new(
        features,
        labels,
        vec![spec.bins; spec.features],
        spec.classes,
    )
    .expect("generated dataset is valid by construction")
}

/// HAR-like dataset: 6 activity classes over 64 discretized features
/// (a reduced feature set of the 561-feature original), 3000 instances.
pub fn har_like(seed: u64) -> LabeledDataset {
    synthetic_sensor_dataset(
        seed,
        SensorSpec {
            classes: 6,
            features: 64,
            bins: 4,
            instances: 3000,
            separation: 2.2,
        },
    )
}

/// UniMiB-SHAR-like dataset: 9 activity classes over 8 features,
/// 2000 instances.
pub fn unimib_like(seed: u64) -> LabeledDataset {
    synthetic_sensor_dataset(
        seed,
        SensorSpec {
            classes: 9,
            features: 8,
            bins: 4,
            instances: 2000,
            separation: 2.6,
        },
    )
}

/// UIWADS-like dataset: binary user verification from walking patterns
/// over 6 features, 1500 instances.
pub fn uiwads_like(seed: u64) -> LabeledDataset {
    synthetic_sensor_dataset(
        seed,
        SensorSpec {
            classes: 2,
            features: 6,
            bins: 4,
            instances: 1500,
            separation: 2.0,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use problp_bayes::NaiveBayes;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(uiwads_like(5), uiwads_like(5));
        assert_ne!(uiwads_like(5), uiwads_like(6));
    }

    #[test]
    fn shapes_match_specs() {
        let har = har_like(1);
        assert_eq!(har.feature_count(), 64);
        assert_eq!(har.class_arity(), 6);
        assert_eq!(har.len(), 3000);
        let unimib = unimib_like(1);
        assert_eq!(unimib.feature_count(), 8);
        assert_eq!(unimib.class_arity(), 9);
        let uiwads = uiwads_like(1);
        assert_eq!(uiwads.feature_count(), 6);
        assert_eq!(uiwads.class_arity(), 2);
    }

    #[test]
    fn every_class_appears_in_the_training_prefix() {
        for ds in [har_like(3), unimib_like(3), uiwads_like(3)] {
            let (train, _) = ds.split(0.6);
            let mut seen = vec![false; ds.class_arity()];
            for &l in train.labels() {
                seen[l] = true;
            }
            assert!(seen.iter().all(|&s| s), "a class is missing from training");
        }
    }

    #[test]
    fn data_is_learnable_above_chance() {
        // The point of the synthetic data: naive Bayes must find signal,
        // like on the real smartphone datasets.
        for (ds, chance) in [
            (har_like(11), 1.0 / 6.0),
            (unimib_like(11), 1.0 / 9.0),
            (uiwads_like(11), 0.5),
        ] {
            let (train, test) = ds.split(0.6);
            let nb = NaiveBayes::fit(&train, 1.0).unwrap();
            let acc = nb.accuracy(&test);
            assert!(
                acc > chance + 0.15,
                "accuracy {acc} too close to chance {chance}"
            );
        }
    }

    #[test]
    fn bins_are_exercised() {
        let ds = har_like(2);
        let mut seen = [false; 4];
        for row in ds.features() {
            for &b in row {
                seen[b] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "all bins should occur");
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn degenerate_specs_panic() {
        let _ = synthetic_sensor_dataset(
            0,
            SensorSpec {
                classes: 1,
                features: 4,
                bins: 4,
                instances: 100,
                separation: 1.0,
            },
        );
    }
}
