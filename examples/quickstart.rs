//! Quickstart: run the full ProbLP pipeline on a small Bayesian network.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the paper's Figure-1 network, compiles it to an arithmetic
//! circuit, asks ProbLP for hardware that answers marginal queries within
//! an absolute error of 0.01, and prints the resulting report plus the
//! head of the generated Verilog.
//!
//! The same flow (and the batched-serving counterpart) is a runnable
//! doctest on the `problp` facade — see the crate-level docs of
//! `src/lib.rs`, exercised by `cargo test`.

use problp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A Bayesian network: A -> B, A -> C (paper Fig. 1a).
    let mut builder = BayesNetBuilder::new();
    let a = builder.variable("A", 2);
    let b = builder.variable("B", 2);
    let c = builder.variable("C", 3);
    builder.cpt(a, [], [0.6, 0.4])?;
    builder.cpt(b, [a], [0.7, 0.3, 0.2, 0.8])?;
    builder.cpt(c, [a], [0.5, 0.3, 0.2, 0.1, 0.4, 0.5])?;
    let network = builder.build()?;

    // 2. Compile to an arithmetic circuit (paper Fig. 1b) and query it.
    let circuit = compile(&network)?;
    let mut evidence = Evidence::empty(network.var_count());
    evidence.observe(a, 0); // A = a1 in the paper's 1-based notation
    evidence.observe(c, 2); // C = c3
    println!(
        "Pr(A=a1, C=c3) = {:.4}  (closed form: 0.6 * 0.2 = 0.12)\n",
        circuit.evaluate(&evidence)?
    );

    // 3. Run ProbLP: choose a representation and generate hardware.
    let report = Problp::new(&circuit)
        .query(QueryType::Marginal)
        .tolerance(Tolerance::Absolute(0.01))
        .run()?;
    println!("{report}\n");

    // 4. The low-precision circuit keeps the query within tolerance.
    let stats = measure_errors(
        &problp::ac::transform::binarize(&circuit)?,
        report.selected.repr,
        QueryType::Marginal,
        a,
        &[evidence],
    )?;
    println!("observed on the example query: {stats}\n");

    // 5. And here is the hardware.
    let head: String = report
        .hardware
        .verilog
        .lines()
        .take(12)
        .collect::<Vec<_>>()
        .join("\n");
    println!("generated Verilog (first lines):\n{head}\n...");
    Ok(())
}
