//! Patient monitoring on the ALARM network: validating error bounds.
//!
//! ```text
//! cargo run --release --example alarm_monitoring
//! ```
//!
//! The Alarm network (Beinlich et al. 1989) is the paper's standard
//! mid-size benchmark. This example reproduces the flavour of Figure 5(a)
//! at example scale: it sweeps fixed-point fraction bits, printing the
//! analytical bound next to the worst error observed on sampled patient
//! records — the bound must always dominate.

use problp::bounds::{fixed_query_bound, AcAnalysis};
use problp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = problp::data::alarm_benchmark(7, 120);
    println!("benchmark: {bench}");

    let circuit = compile(&bench.net)?;
    let binarized = problp::ac::transform::binarize(&circuit)?;
    let analysis = AcAnalysis::new(&binarized)?;
    println!("compiled AC: {}", binarized.stats());
    println!(
        "value range: max {:.3e}, min positive {:.3e}\n",
        analysis.global_max(),
        analysis.global_min_positive()
    );

    println!(
        "{:>5} | {:>12} | {:>12} | {:>12}",
        "F", "bound", "max obs.", "mean obs."
    );
    println!("{}", "-".repeat(52));
    for frac in [8u32, 12, 16, 20, 24, 28] {
        let format = FixedFormat::new(1, frac)?;
        let bound = fixed_query_bound(
            &binarized,
            &analysis,
            format,
            QueryType::Marginal,
            Tolerance::Absolute(1.0),
            LeafErrorModel::WorstCase,
        )?;
        let stats = measure_errors(
            &binarized,
            Representation::Fixed(format),
            QueryType::Marginal,
            bench.query_var,
            &bench.test_evidence,
        )?;
        println!(
            "{frac:>5} | {bound:>12.3e} | {:>12.3e} | {:>12.3e}",
            stats.max_abs, stats.mean_abs
        );
        assert!(
            stats.max_abs <= bound,
            "observed error exceeded the analytical bound"
        );
    }

    // A monitoring decision: Pr(HYPOVOLEMIA | sensor readings).
    let report = Problp::new(&circuit)
        .query(QueryType::Conditional)
        .tolerance(Tolerance::Relative(0.01))
        .skip_rtl()
        .run()?;
    println!("\nfor bedside deployment: {report}");
    Ok(())
}
