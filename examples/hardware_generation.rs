//! From Bayesian network to pipelined Verilog, with cycle-accurate
//! validation (paper §3.4, Fig. 4).
//!
//! ```text
//! cargo run --example hardware_generation
//! ```
//!
//! Compiles the sprinkler network, generates the fixed-point datapath,
//! streams a new query into the pipeline on every clock cycle, checks the
//! results against software evaluation bit-for-bit, and writes the
//! Verilog to `problp_ac_top.v`.

use problp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = problp::bayes::networks::sprinkler();
    let circuit = problp::ac::transform::binarize(&compile(&network)?)?;
    let format = FixedFormat::new(1, 11)?;
    let repr = Representation::Fixed(format);

    let netlist = Netlist::from_ac(&circuit, repr)?;
    let stats = netlist.stats();
    println!("netlist: {stats}");
    println!(
        "register budget: {} output words + {} balancing words = {} bits\n",
        stats.output_regs,
        stats.balance_regs,
        stats.register_bits()
    );

    // Stream one query per cycle through the pipeline.
    let queries: Vec<Evidence> = (0..4)
        .map(|k| {
            let mut e = Evidence::empty(network.var_count());
            e.observe(VarId::from_index(k % 4), k % 2);
            e
        })
        .collect();
    let depth = netlist.pipeline_depth() as usize;
    let mut sim = PipelineSim::new(&netlist, FixedArith::new(format));
    let mut outputs = Vec::new();
    for q in &queries {
        outputs.push(sim.step(Some(q))?);
    }
    for _ in 0..depth {
        outputs.push(sim.step(None)?);
    }
    println!("pipeline depth {depth}, one result per cycle:");
    for (k, q) in queries.iter().enumerate() {
        let hw = outputs[depth - 1 + k].as_ref().expect("result valid");
        let mut sw_ctx = FixedArith::new(format);
        let sw = circuit.evaluate_with(&mut sw_ctx, q, Semiring::SumProduct)?;
        println!(
            "  query {k}: hw raw 0x{:04x} = {:.5}   (software: 0x{:04x})  {}",
            hw.raw(),
            hw.to_f64(),
            sw.raw(),
            if hw.raw() == sw.raw() {
                "bit-exact"
            } else {
                "MISMATCH"
            }
        );
        assert_eq!(hw.raw(), sw.raw());
    }

    let rtl = emit_verilog(&netlist);
    let path = "problp_ac_top.v";
    std::fs::write(path, &rtl)?;
    println!("\nwrote {} lines of Verilog to {path}", rtl.lines().count());
    Ok(())
}
