//! Precision-energy trade-off exploration.
//!
//! ```text
//! cargo run --release --example precision_tradeoffs
//! ```
//!
//! Sweeps the error tolerance for the UIWADS-like user-verification
//! benchmark and prints the representations ProbLP chooses, illustrating
//! the paper's closing remark: "the choice of 0.01 error tolerance is
//! arbitrary and higher energy-efficiency can be achieved for relaxed
//! error tolerances".

use problp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = problp::data::uiwads_benchmark(42);
    let circuit = compile(&bench.net)?;
    println!("benchmark: {bench}\n");

    println!(
        "{:>10} | {:>14} | {:>14} | {:>10} | {:>9}",
        "tolerance", "fixed (I,F)", "float (E,M)", "selected", "nJ/eval"
    );
    println!("{}", "-".repeat(72));
    for tol in [0.1, 0.03, 0.01, 0.003, 1e-3, 1e-4, 1e-6] {
        let report = Problp::new(&circuit)
            .query(QueryType::Marginal)
            .tolerance(Tolerance::Absolute(tol))
            .skip_rtl()
            .run()?;
        let fixed = report
            .fixed
            .as_ref()
            .map(|c| c.repr.to_string())
            .unwrap_or_else(|| ">64 bits".into());
        let float = report
            .float
            .as_ref()
            .map(|c| c.repr.to_string())
            .unwrap_or_else(|| ">64 bits".into());
        println!(
            "{tol:>10.0e} | {fixed:>14} | {float:>14} | {:>10} | {:>9.4}",
            if report.selected.repr.is_fixed() {
                "fixed"
            } else {
                "float"
            },
            report.selected.energy.total_nj()
        );
    }

    println!("\nrelaxing the tolerance buys energy: every row meets its guarantee.");
    Ok(())
}
