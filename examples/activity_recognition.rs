//! Smartphone activity recognition with low-precision inference hardware.
//!
//! ```text
//! cargo run --release --example activity_recognition
//! ```
//!
//! The scenario of the paper's introduction: a smartphone classifier
//! evaluates `Pr(Activity | sensors)` and acts only when the probability
//! clears a threshold (0.60). Tolerating ±0.01 of output error only
//! affects decisions in the 0.59–0.61 band while enabling much cheaper
//! hardware.
//!
//! This example trains a naive-Bayes activity classifier on the HAR-like
//! synthetic dataset, runs ProbLP for a conditional query with absolute
//! tolerance 0.01, and measures how many threshold decisions change.

use problp::bounds::BoundsError;
use problp::prelude::*;

const THRESHOLD: f64 = 0.60;
const TEST_INSTANCES: usize = 150;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = problp::data::har_benchmark(42);
    println!("benchmark: {bench}");

    let circuit = compile(&bench.net)?;
    let binarized = problp::ac::transform::binarize(&circuit)?;
    println!("compiled AC: {}\n", binarized.stats());

    let report = Problp::new(&circuit)
        .query(QueryType::Conditional)
        .tolerance(Tolerance::Absolute(0.01))
        .skip_rtl()
        .run()?;
    println!("{report}\n");

    // The paper's Table 2 (HAR, cond. prob.): fixed point needs more than
    // 64 fraction bits, so float must be selected.
    if let Some(BoundsError::ToleranceUnreachable { max_bits, .. }) = &report.fixed_failure {
        println!("fixed point needs >{max_bits} fraction bits here -> float selected\n");
    }

    // Measure the real effect on threshold decisions.
    let evidences = &bench.test_evidence[..TEST_INSTANCES.min(bench.test_len())];
    let stats = measure_errors(
        &binarized,
        report.selected.repr,
        QueryType::Conditional,
        bench.query_var,
        evidences,
    )?;
    println!("observed conditional error: {stats}");
    assert!(
        stats.max_abs <= 0.01,
        "observed error exceeded the guarantee"
    );

    // Count decision flips around the threshold.
    let mut exact_ctx = F64Arith::new();
    let mut flips = 0usize;
    let mut near_band = 0usize;
    let classes = bench.net.variable(bench.query_var).arity();
    for e in evidences {
        let den = binarized.evaluate(e)?;
        for s in 0..classes {
            let mut with_q = e.clone();
            with_q.observe(bench.query_var, s);
            let exact = binarized.evaluate(&with_q)? / den;
            let approx = match report.selected.repr {
                Representation::Fixed(f) => {
                    let mut ctx = FixedArith::new(f);
                    let n = binarized.evaluate_with(&mut ctx, &with_q, Semiring::SumProduct)?;
                    let d = binarized.evaluate_with(&mut ctx, e, Semiring::SumProduct)?;
                    ctx.to_f64(&n) / ctx.to_f64(&d)
                }
                Representation::Float(f) => {
                    let mut ctx = FloatArith::new(f);
                    let n = binarized.evaluate_with(&mut ctx, &with_q, Semiring::SumProduct)?;
                    let d = binarized.evaluate_with(&mut ctx, e, Semiring::SumProduct)?;
                    ctx.to_f64(&n) / ctx.to_f64(&d)
                }
            };
            if (exact - THRESHOLD).abs() < 0.01 {
                near_band += 1;
            }
            if (exact >= THRESHOLD) != (approx >= THRESHOLD) {
                flips += 1;
            }
        }
    }
    let _ = &mut exact_ctx;
    println!(
        "threshold decisions: {} outputs, {} inside the 0.59-0.61 band, {} flipped",
        evidences.len() * classes,
        near_band,
        flips
    );
    assert!(
        flips <= near_band,
        "flips can only happen inside the tolerance band"
    );
    println!(
        "\nenergy: {:.3} nJ/eval selected vs {:.3} nJ/eval for 32b float ({:.2}x saving)",
        report.selected.energy.total_nj(),
        report.baseline_float32_nj,
        report.saving_vs_float32()
    );
    Ok(())
}
