//! Architecture exploration: fully-parallel pipeline vs. a single-ALU
//! sequential accelerator.
//!
//! ```text
//! cargo run --release --example sequential_vs_parallel
//! ```
//!
//! ProbLP's output is a fully-parallel pipelined datapath (paper §3.4):
//! one operator per AC node, one result per clock. Earlier accelerators
//! (the paper's reference [12]) time-multiplex one ALU over the circuit.
//! Both run the same arithmetic, so both meet the same error bound — the
//! difference is throughput versus area and register energy. This example
//! quantifies the trade-off for the Alarm circuit.

use problp::energy::{CellLibrary, EnergyModel, Tsmc65Model};
use problp::hw::Schedule;
use problp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = problp::bayes::networks::alarm(7);
    let circuit = problp::ac::transform::binarize(&compile(&net)?)?;
    let format = FixedFormat::new(1, 14)?; // the paper's Alarm choice
    let repr = Representation::Fixed(format);

    let netlist = Netlist::from_ac(&circuit, repr)?;
    let schedule = Schedule::from_netlist(&netlist)?;
    let hw = netlist.stats();
    let seq = schedule.stats();

    // Both execute identical arithmetic: verify bit-exact agreement.
    let mut e = Evidence::empty(net.var_count());
    e.observe(net.find("BP").unwrap(), 1);
    let mut pipe = PipelineSim::new(&netlist, FixedArith::new(format));
    let parallel_out = pipe.run(&e)?;
    let mut ctx = FixedArith::new(format);
    let sequential_out = schedule.execute(&mut ctx, &e)?;
    assert_eq!(parallel_out.raw(), sequential_out.raw());
    println!(
        "both architectures agree bit-for-bit: Pr(e) = {:.6}\n",
        parallel_out.to_f64()
    );

    // Throughput.
    println!("architecture      | cycles/result | registers (words)");
    println!("{}", "-".repeat(55));
    println!(
        "parallel pipeline | {:>13} | {:>7} (+{} balancing)",
        1, hw.output_regs, hw.balance_regs
    );
    println!(
        "sequential ALU    | {:>13} | {:>7}",
        seq.instructions, seq.registers
    );

    // Energy per evaluation: operators cost the same; the architectures
    // differ in register traffic.
    let model = Tsmc65Model;
    let lib = CellLibrary::default();
    let op_fj =
        hw.adds as f64 * model.fixed_add_fj(format) + hw.muls as f64 * model.fixed_mul_fj(format);
    let parallel_reg_fj = lib.register_fj(hw.register_bits());
    // Sequential: per instruction two register-file reads and one write
    // (approximated as flop accesses of one word each).
    let seq_reg_fj = lib.register_fj(3 * seq.instructions * seq.word_bits as usize);
    println!(
        "\nenergy per evaluation (operators identical at {:.2} nJ):",
        op_fj * 1e-6
    );
    println!(
        "  parallel register energy:   {:.3} nJ",
        parallel_reg_fj * 1e-6
    );
    println!("  sequential register energy: {:.3} nJ", seq_reg_fj * 1e-6);
    println!(
        "\nthe parallel datapath produces {}x more results per cycle at {:.1}x the register count",
        seq.instructions,
        (hw.output_regs + hw.balance_regs) as f64 / seq.registers as f64
    );
    Ok(())
}
