//! All posterior marginals in two passes: the differential approach.
//!
//! ```text
//! cargo run --example differential_diagnosis
//! ```
//!
//! The paper's footnote 2 mentions evaluating conditionals "by an upward
//! and a downward pass in an AC followed with a division". This example
//! uses that machinery on the Asia chest-clinic network: one upward and
//! one downward pass yield the posterior of *every* disease at once,
//! then MPE decoding names the single most probable explanation.

use problp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = problp::bayes::networks::asia();
    let circuit = compile(&net)?;

    // A patient: positive x-ray, dyspnoea, smoker.
    let mut e = Evidence::empty(net.var_count());
    e.observe(net.find("XRay").unwrap(), 1);
    e.observe(net.find("Dyspnoea").unwrap(), 1);
    e.observe(net.find("Smoking").unwrap(), 1);
    println!("evidence: positive x-ray, dyspnoea, smoker\n");

    // One upward + one downward pass: marginals for every variable.
    println!("{:>14} | {:>10} | oracle", "variable", "Pr(yes|e)");
    println!("{}", "-".repeat(42));
    for name in [
        "Tuberculosis",
        "LungCancer",
        "Bronchitis",
        "Either",
        "VisitAsia",
    ] {
        let var = net.find(name).unwrap();
        let row = circuit.posterior_marginal(var, &e)?;
        let oracle = net.conditional(var, 1, &e);
        println!("{name:>14} | {:>10.4} | {oracle:.4}", row[1]);
        assert!((row[1] - oracle).abs() < 1e-9);
    }

    // The single most probable full explanation.
    let (assignment, p) = circuit.mpe_assignment(&e)?;
    println!("\nmost probable explanation (joint probability {p:.5}):");
    for (v, &state) in assignment.iter().enumerate() {
        let var = net.variable(VarId::from_index(v));
        println!(
            "  {:>14} = {}",
            var.name(),
            if state == 1 { "yes" } else { "no" }
        );
    }
    let (oracle_assignment, oracle_p) = net.mpe(&e);
    assert_eq!(assignment, oracle_assignment);
    assert!((p - oracle_p).abs() < 1e-12);

    // The derivative trick costs two passes; the naive route costs one
    // evaluation per (variable, state).
    let n_queries: usize = (0..net.var_count())
        .filter(|&v| e.state(VarId::from_index(v)).is_none())
        .map(|v| net.variable(VarId::from_index(v)).arity())
        .sum();
    println!("\ncost: 2 passes instead of {n_queries} separate evaluations for all marginals");
    Ok(())
}
