//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored shim implements the subset of the criterion API the
//! workspace's benches use: [`Criterion::bench_function`],
//! [`Bencher::iter`], [`black_box`], [`criterion_group!`] and
//! [`criterion_main!`]. Benches are still `harness = false` binaries run
//! with `cargo bench`.
//!
//! Measurement model: each benchmark is warmed up for ~100 ms, then sampled
//! in batches sized to last ~20 ms each until ~600 ms of measurement has
//! accumulated; the reported figure is the median batch mean with min/max
//! spread. That is cruder than real criterion's bootstrap analysis but
//! stable enough to compare order-of-magnitude throughput claims.
//! Set `CRITERION_QUICK=1` to cut the times by 10x (used in CI smoke runs).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    warmup: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0");
        let scale = if quick { 10 } else { 1 };
        Criterion {
            warmup: Duration::from_millis(100 / scale),
            measurement: Duration::from_millis(600 / scale),
        }
    }
}

impl Criterion {
    /// Benchmarks one function. The closure receives a [`Bencher`] and
    /// must call [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warmup: self.warmup,
            measurement: self.measurement,
            samples: Vec::new(),
        };
        f(&mut bencher);
        report(id, &bencher.samples);
        self
    }

    /// Compatibility no-op (real criterion tunes sample counts).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Shrinks or stretches the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }
}

/// Runs the measured closure; created by [`Criterion::bench_function`].
pub struct Bencher {
    warmup: Duration,
    measurement: Duration,
    samples: Vec<f64>,
}

impl Bencher {
    /// Measures `routine`, storing per-iteration timings (ns).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup, and estimate the cost of one iteration.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warmup.as_secs_f64() / warm_iters.max(1) as f64;
        // Size batches to ~20 ms so Instant overhead is negligible.
        let batch = ((0.02 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000_000);

        let run_start = Instant::now();
        while run_start.elapsed() < self.measurement {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t0.elapsed().as_secs_f64();
            self.samples.push(elapsed * 1e9 / batch as f64);
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} \u{00b5}s", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn report(id: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("{id:<50} no samples (Bencher::iter never called?)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    println!(
        "{id:<50} time: [{} {} {}]",
        format_ns(min),
        format_ns(median),
        format_ns(max)
    );
}

/// Declares a function that runs a list of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the `main` of a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(20));
        let mut ran = false;
        c.bench_function("noop", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1));
        });
        assert!(ran);
    }

    #[test]
    fn ns_formatting_scales() {
        assert_eq!(format_ns(1.5), "1.50 ns");
        assert_eq!(format_ns(1500.0), "1.50 \u{00b5}s");
        assert_eq!(format_ns(1.5e6), "1.50 ms");
        assert_eq!(format_ns(1.5e9), "1.50 s");
    }
}
