//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored shim provides the (small) subset of the rand 0.9 API the
//! workspace actually uses:
//!
//! * [`RngCore`] / [`Rng`] with [`Rng::random`] and [`Rng::random_range`],
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`] — implemented as xoshiro256\*\* seeded via SplitMix64.
//!
//! The generator is deterministic and of good statistical quality for the
//! workspace's purposes (seeded benchmark generation and tests); it is NOT
//! the same stream as the real `StdRng`, and it is not cryptographically
//! secure. Swap in the real crate when network access is available.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, rand 0.9 style.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform in `[0, 1)` for floats, uniform over all values for
    /// integers and `bool`).
    fn random<T: distr::StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from the given range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: distr::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Standard distributions and range sampling.
pub mod distr {
    use super::RngCore;

    /// Types samplable by [`Rng::random`](super::Rng::random).
    pub trait StandardUniform: Sized {
        /// Samples one value from the standard distribution.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl StandardUniform for u64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl StandardUniform for u128 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl StandardUniform for $t {
                fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

    impl StandardUniform for i128 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            u128::sample_standard(rng) as i128
        }
    }

    impl StandardUniform for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl StandardUniform for f64 {
        /// Uniform in `[0, 1)` with 53 bits of precision.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl StandardUniform for f32 {
        /// Uniform in `[0, 1)` with 24 bits of precision.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    /// Ranges samplable by [`Rng::random_range`](super::Rng::random_range).
    pub trait SampleRange<T> {
        /// Samples one value uniformly from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Uniform `u64` in `[0, span)`, unbiased via rejection below
    /// `2^64 mod span`.
    fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        let threshold = span.wrapping_neg() % span;
        loop {
            let v = rng.next_u64();
            if v >= threshold {
                return v % span;
            }
        }
    }

    macro_rules! impl_sample_range_int {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(uniform_below(rng, span) as $t)
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(uniform_below(rng, span + 1) as $t)
                }
            }
        )*};
    }
    impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_sample_range_float {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let unit = <$t as StandardUniform>::sample_standard(rng);
                    self.start + (self.end - self.start) * unit
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let unit = <$t as StandardUniform>::sample_standard(rng);
                    lo + (hi - lo) * unit
                }
            }
        )*};
    }
    impl_sample_range_float!(f32, f64);
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256\*\*,
    /// seeded via SplitMix64.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_state(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.random_range(2usize..=6);
            assert!((2..=6).contains(&v));
            seen[v - 2] = true;
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "all values of 2..=6 reached");
    }

    #[test]
    fn unsized_rng_works_through_references() {
        fn takes_dyn<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let x = takes_dyn(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }
}
