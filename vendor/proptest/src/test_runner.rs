//! The case runner behind the [`proptest!`](crate::proptest) macro.

use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = rand::rngs::StdRng;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum number of rejected cases (`prop_assume!` / filters) before
    /// the test errors out as too-sparse.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            max_global_rejects: cases.saturating_mul(64).max(1024),
        }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than real proptest's 256 to keep the offline
    /// suite fast; tests needing more set `with_cases` explicitly.
    fn default() -> Self {
        ProptestConfig::with_cases(64)
    }
}

/// Why a test case did not succeed.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; it is regenerated.
    Reject(String),
    /// An assertion failed; the test fails.
    Fail(String),
}

impl TestCaseError {
    /// Creates a failure.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Creates a rejection.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

/// Deterministic per-test seed: FNV-1a of the test name, XORed with the
/// optional `PROPTEST_SEED` environment variable.
fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(extra) = s.parse::<u64>() {
            h ^= extra;
        }
    }
    h
}

/// Runs `case` until `config.cases` successes (panicking on the first
/// failure) — the engine behind [`proptest!`](crate::proptest).
///
/// The closure returns the debug rendering of the generated inputs plus
/// the case outcome, so failures can report what was generated.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
{
    let seed = seed_for(name);
    let mut rng = TestRng::seed_from_u64(seed);
    let mut successes = 0u32;
    let mut rejects = 0u32;
    let mut case_index = 0u64;
    while successes < config.cases {
        case_index += 1;
        // Catch panics so unwrap-style failures still report their inputs.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
        match result {
            Ok((_, Ok(()))) => successes += 1,
            Ok((_, Err(TestCaseError::Reject(_)))) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!(
                        "proptest '{name}': too many rejected cases \
                         ({rejects} rejects for {successes} successes; seed {seed})"
                    );
                }
            }
            Ok((inputs, Err(TestCaseError::Fail(message)))) => {
                panic!(
                    "proptest '{name}' failed at case #{case_index} (seed {seed}):\n\
                     {message}\n  inputs: {inputs}\n  (no shrinking in offline shim; \
                     rerun with PROPTEST_SEED={seed} to reproduce)"
                );
            }
            Err(panic_payload) => {
                eprintln!(
                    "proptest '{name}' panicked at case #{case_index} (seed {seed}); \
                     rerun with PROPTEST_SEED={seed} to reproduce"
                );
                std::panic::resume_unwind(panic_payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_the_requested_number_of_cases() {
        let mut count = 0;
        run_cases(&ProptestConfig::with_cases(10), "t", |_| {
            count += 1;
            (String::new(), Ok(()))
        });
        assert_eq!(count, 10);
    }

    #[test]
    fn rejects_do_not_count_as_successes() {
        let mut total = 0;
        run_cases(&ProptestConfig::with_cases(5), "t", |rng| {
            total += 1;
            use rand::Rng;
            if rng.random::<f64>() < 0.5 {
                (String::new(), Err(TestCaseError::reject("skip")))
            } else {
                (String::new(), Ok(()))
            }
        });
        assert!(total >= 5);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_panic_with_the_message() {
        run_cases(&ProptestConfig::with_cases(5), "t", |_| {
            (String::from("()"), Err(TestCaseError::fail("boom")))
        });
    }
}
