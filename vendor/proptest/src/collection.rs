//! Collection strategies (`proptest::collection::vec`).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A length specification for [`vec()`]: a fixed `usize` or a range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec length range");
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec`s whose elements come from `element` and whose length
/// is drawn from `size` (a `usize`, `a..b` or `a..=b`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Clone, Copy, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.min + 1 == self.size.max {
            self.size.min
        } else {
            rng.random_range(self.size.min..self.size.max)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fixed_and_ranged_lengths() {
        let mut rng = TestRng::seed_from_u64(7);
        assert_eq!(vec(0usize..5, 3).generate(&mut rng).len(), 3);
        for _ in 0..50 {
            let v = vec(0usize..5, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
