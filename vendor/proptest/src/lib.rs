//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored shim implements the subset of the proptest API the
//! workspace's property tests use:
//!
//! * the [`proptest!`] macro (including `#![proptest_config(...)]`),
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric
//!   ranges, tuples, [`strategy::Just`] and [`strategy::any`],
//! * [`collection::vec`] with fixed or ranged lengths,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Differences from real proptest: cases are generated from a
//! deterministic per-test seed (override with the `PROPTEST_SEED`
//! environment variable) and failing inputs are reported but **not
//! shrunk**. That trade keeps the shim small while preserving the
//! regression-catching power of the tests.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_cases(&__config, stringify!($name), |__proptest_rng| {
                let __values = ( $( $crate::strategy::Strategy::generate(&($s), __proptest_rng), )+ );
                let __inputs = ::std::format!("{:?}", __values);
                let ( $($p,)+ ) = __values;
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                (__inputs, __outcome)
            });
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n {}",
            __l,
            __r,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Fails the current test case if both expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `left != right`\n  both: {:?}",
            __l
        );
    }};
}

/// Rejects the current test case (it is regenerated, not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
