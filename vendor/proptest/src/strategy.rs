//! Value-generation strategies (no shrinking).

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;
use rand::Rng;

/// A source of generated values for property tests.
///
/// Unlike real proptest, strategies here generate values directly from an
/// RNG and do not build shrinkable value trees.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, map }
    }

    /// Filters generated values; rejected values are resampled (up to an
    /// internal retry limit).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        filter: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            source: self,
            filter,
            whence,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.source.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Clone, Copy, Debug)]
pub struct Filter<S, F> {
    source: S,
    filter: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.source.generate(rng);
            if (self.filter)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.whence
        );
    }
}

/// A strategy that always yields the same value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Debug + Sized {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_random {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.random()
            }
        }
    )*};
}
impl_arbitrary_via_random!(bool, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for f64 {
    /// Any bit pattern, so infinities and NaNs occur; tests guard with
    /// `prop_assume!(x.is_finite())` just as with real proptest.
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.random())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.random())
    }
}

/// The whole-domain strategy for `T`: `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuples! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_map_compose() {
        let mut rng = TestRng::seed_from_u64(7);
        let strat = (0u64..10, (1.0f64..2.0).prop_map(|x| x * 2.0));
        for _ in 0..100 {
            let (a, b) = strat.generate(&mut rng);
            assert!(a < 10);
            assert!((2.0..4.0).contains(&b));
        }
    }

    #[test]
    fn just_is_constant() {
        let mut rng = TestRng::seed_from_u64(7);
        assert_eq!(Just(41).generate(&mut rng), 41);
    }
}
