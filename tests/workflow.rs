//! End-user workflow test: the path the `problp` CLI takes, exercised
//! through the public API — text network in, report + RTL + testbench
//! out.

use problp::prelude::*;

const NETWORK_TEXT: &str = "\
# a tiny monitoring model
network monitor
variable Fault 2
variable SensorA 3
variable SensorB 2
cpt Fault | : 0.95 0.05
cpt SensorA | Fault : 0.7 0.2 0.1 0.1 0.3 0.6
cpt SensorB | Fault : 0.9 0.1 0.2 0.8
";

#[test]
fn text_network_to_hardware_and_back() {
    // Parse.
    let net = problp::bayes::io::from_text(NETWORK_TEXT).unwrap();
    assert_eq!(net.var_count(), 3);
    assert_eq!(net.find("Fault").map(|v| v.index()), Some(0));

    // Compile and run the framework.
    let circuit = compile(&net).unwrap();
    let report = Problp::new(&circuit)
        .query(QueryType::Conditional)
        .tolerance(Tolerance::Relative(0.02))
        .run()
        .unwrap();
    assert!(report.selected.repr.is_float());
    assert!(report.selected.bound <= 0.02);
    assert!(report.hardware.verilog.contains("module problp_ac_top"));

    // Serialize the network back: the roundtrip is exact.
    let text = problp::bayes::io::to_text(&net, "monitor");
    let back = problp::bayes::io::from_text(&text).unwrap();
    assert_eq!(back, net);

    // Emit a testbench over a few vectors and check it references the
    // hardware's latency.
    let bin = problp::ac::transform::binarize(&circuit).unwrap();
    let nl = Netlist::from_ac(&bin, report.selected.repr).unwrap();
    let vectors = vec![Evidence::empty(3), {
        let mut e = Evidence::empty(3);
        e.observe(net.find("SensorA").unwrap(), 2);
        e
    }];
    let tb = emit_testbench(&nl, &vectors).unwrap();
    assert!(tb.contains("module problp_ac_tb"));
    assert!(tb.contains(&format!("latency {} cycles", nl.pipeline_depth())));

    // Diagnostic query: a high sensor reading raises the fault posterior.
    let fault = net.find("Fault").unwrap();
    let mut e = Evidence::empty(3);
    e.observe(net.find("SensorA").unwrap(), 2);
    e.observe(net.find("SensorB").unwrap(), 1);
    let posterior = net.conditional(fault, 1, &e);
    assert!(posterior > 0.5, "posterior {posterior}");
    // The compiled circuit agrees via the differential pass.
    let row = bin.posterior_marginal(fault, &e).unwrap();
    assert!((row[1] - posterior).abs() < 1e-9);
}

#[test]
fn csv_dataset_to_classifier_hardware() {
    // Generate, export, re-import, train, compile, select.
    let ds = problp::data::uiwads_like(9);
    let csv = problp::data::csv::to_csv(&ds);
    let back = problp::data::csv::from_csv(&csv).unwrap();
    assert_eq!(back, ds);
    let (train, test) = back.split(0.6);
    let nb = NaiveBayes::fit(&train, 1.0).unwrap();
    assert!(nb.accuracy(&test) > 0.7);
    let circuit = compile_naive_bayes(&nb).unwrap();
    let report = Problp::new(&circuit)
        .query(QueryType::Marginal)
        .tolerance(Tolerance::Absolute(0.01))
        .skip_rtl()
        .run()
        .unwrap();
    assert!(report.selected.repr.is_fixed(), "Table 2's UIWADS row");
}

#[test]
fn optimized_pipeline_keeps_its_guarantee_end_to_end() {
    let net = problp::bayes::networks::asia();
    let circuit = compile(&net).unwrap();
    let report = Problp::new(&circuit)
        .optimize_circuit(true)
        .query(QueryType::Marginal)
        .tolerance(Tolerance::Absolute(0.01))
        .skip_rtl()
        .run()
        .unwrap();
    // Measure on the optimized, binarized circuit (what the HW implements).
    let (opt, _) = problp::ac::optimize(&circuit).unwrap();
    let bin = problp::ac::transform::binarize(&opt).unwrap();
    let evidences: Vec<Evidence> = (0..net.var_count())
        .map(|v| {
            let mut e = Evidence::empty(net.var_count());
            e.observe(VarId::from_index(v), 1);
            e
        })
        .collect();
    let stats = measure_errors(
        &bin,
        report.selected.repr,
        QueryType::Marginal,
        net.find("LungCancer").unwrap(),
        &evidences,
    )
    .unwrap();
    assert!(stats.max_abs <= report.selected.bound);
    assert!(stats.max_abs <= 0.01);
}
