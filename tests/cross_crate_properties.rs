//! Cross-crate property tests: for random networks, random formats and
//! random evidence, the full stack keeps its invariants.

use proptest::prelude::*;

use problp::ac::transform::{binarize, binarize_chain};
use problp::bounds::{fixed_query_bound, float_query_bound, AcAnalysis};
use problp::prelude::*;

/// A seeded random network plus one random evidence over it.
fn net_and_evidence() -> impl Strategy<Value = (u64, Vec<usize>)> {
    (0u64..200, proptest::collection::vec(0usize..100, 6))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn compiled_circuits_match_the_enumeration_oracle(
        (seed, picks) in net_and_evidence()
    ) {
        let net = problp::bayes::networks::random_network(seed, 6, 2, 3);
        let ac = compile(&net).unwrap();
        let mut e = Evidence::empty(net.var_count());
        for (v, p) in picks.iter().enumerate() {
            // Observe roughly half the variables.
            if p % 2 == 0 {
                e.observe(VarId::from_index(v), p % net.variable(VarId::from_index(v)).arity());
            }
        }
        let oracle = net.marginal(&e);
        let got = ac.evaluate(&e).unwrap();
        prop_assert!((oracle - got).abs() < 1e-9, "oracle {} vs {}", oracle, got);
    }

    #[test]
    fn binarization_shapes_agree((seed, picks) in net_and_evidence()) {
        let net = problp::bayes::networks::random_network(seed, 6, 2, 3);
        let ac = compile(&net).unwrap();
        let balanced = binarize(&ac).unwrap();
        let chain = binarize_chain(&ac).unwrap();
        let mut e = Evidence::empty(net.var_count());
        if let Some(p) = picks.first() {
            e.observe(VarId::from_index(0), p % net.variable(VarId::from_index(0)).arity());
        }
        let a = balanced.evaluate(&e).unwrap();
        let b = chain.evaluate(&e).unwrap();
        prop_assert!((a - b).abs() < 1e-12);
        // Decomposition shape never changes the operator count (n-1
        // two-input ops per n-input operator), only the tree depth.
        let (bs, cs) = (balanced.stats(), chain.stats());
        prop_assert_eq!(bs.sums, cs.sums);
        prop_assert_eq!(bs.products, cs.products);
    }

    #[test]
    fn fixed_bounds_hold_for_random_nets_and_formats(
        (seed, picks) in net_and_evidence(),
        frac in 4u32..24,
    ) {
        let net = problp::bayes::networks::random_network(seed, 6, 2, 3);
        let ac = binarize(&compile(&net).unwrap()).unwrap();
        let analysis = AcAnalysis::new(&ac).unwrap();
        let int_bits = problp::bounds::required_int_bits(&analysis, 1.0);
        let format = FixedFormat::new(int_bits, frac).unwrap();
        let bound = fixed_query_bound(
            &ac, &analysis, format,
            QueryType::Marginal,
            Tolerance::Absolute(1.0),
            LeafErrorModel::WorstCase,
        ).unwrap();
        let mut e = Evidence::empty(net.var_count());
        for (v, p) in picks.iter().enumerate() {
            if p % 3 == 0 {
                e.observe(VarId::from_index(v), p % net.variable(VarId::from_index(v)).arity());
            }
        }
        let exact = ac.evaluate(&e).unwrap();
        let mut lp = FixedArith::new(format);
        let got = ac.evaluate_with(&mut lp, &e, Semiring::SumProduct).unwrap();
        let err = (lp.to_f64(&got) - exact).abs();
        prop_assert!(err <= bound + 1e-15, "err {} > bound {}", err, bound);
        prop_assert!(!lp.flags().range_violation());
    }

    #[test]
    fn float_bounds_hold_for_random_nets_and_formats(
        (seed, picks) in net_and_evidence(),
        mant in 4u32..24,
    ) {
        let net = problp::bayes::networks::random_network(seed, 6, 2, 3);
        let ac = binarize(&compile(&net).unwrap()).unwrap();
        let analysis = AcAnalysis::new(&ac).unwrap();
        let exp_bits = problp::bounds::required_exp_bits(&analysis, 0.5).unwrap();
        let format = FloatFormat::new(exp_bits, mant).unwrap();
        let bound = float_query_bound(
            &ac, &analysis, format,
            QueryType::Marginal,
            Tolerance::Relative(1.0),
        ).unwrap();
        let mut e = Evidence::empty(net.var_count());
        for (v, p) in picks.iter().enumerate() {
            if p % 3 == 1 {
                e.observe(VarId::from_index(v), p % net.variable(VarId::from_index(v)).arity());
            }
        }
        let exact = ac.evaluate(&e).unwrap();
        prop_assume!(exact > 0.0);
        let mut lp = FloatArith::new(format);
        let got = ac.evaluate_with(&mut lp, &e, Semiring::SumProduct).unwrap();
        let rel = ((lp.to_f64(&got) - exact) / exact).abs();
        prop_assert!(rel <= bound, "rel {} > bound {}", rel, bound);
        prop_assert!(!lp.flags().range_violation());
    }

    #[test]
    fn hardware_is_bit_exact_for_random_circuits(
        (seed, picks) in net_and_evidence(),
        frac in 6u32..20,
    ) {
        let net = problp::bayes::networks::random_network(seed, 5, 2, 3);
        let ac = binarize(&compile(&net).unwrap()).unwrap();
        let analysis = AcAnalysis::new(&ac).unwrap();
        let int_bits = problp::bounds::required_int_bits(&analysis, 1.0);
        let format = FixedFormat::new(int_bits, frac).unwrap();
        let nl = Netlist::from_ac(&ac, Representation::Fixed(format)).unwrap();
        let mut e = Evidence::empty(net.var_count());
        for (v, p) in picks.iter().take(5).enumerate() {
            if p % 2 == 0 {
                e.observe(VarId::from_index(v), p % net.variable(VarId::from_index(v)).arity());
            }
        }
        let mut sw = FixedArith::new(format);
        let expect = ac.evaluate_with(&mut sw, &e, Semiring::SumProduct).unwrap();
        let mut sim = PipelineSim::new(&nl, FixedArith::new(format));
        let got = sim.run(&e).unwrap();
        prop_assert_eq!(got.raw(), expect.raw());
    }

    #[test]
    fn max_analysis_dominates_any_evidence(
        (seed, picks) in net_and_evidence()
    ) {
        let net = problp::bayes::networks::random_network(seed, 6, 2, 3);
        let ac = binarize(&compile(&net).unwrap()).unwrap();
        let analysis = AcAnalysis::new(&ac).unwrap();
        let mut e = Evidence::empty(net.var_count());
        for (v, p) in picks.iter().enumerate() {
            if p % 2 == 1 {
                e.observe(VarId::from_index(v), p % net.variable(VarId::from_index(v)).arity());
            }
        }
        let mut ctx = F64Arith::new();
        let values = ac.evaluate_nodes(&mut ctx, &e, Semiring::SumProduct).unwrap();
        for (i, &v) in values.iter().enumerate() {
            prop_assert!(v <= analysis.max_values()[i] + 1e-12);
            if v > 0.0 {
                prop_assert!(v >= analysis.min_values()[i] - 1e-15);
            }
        }
    }
}
