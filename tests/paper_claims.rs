//! Tests pinning the paper's headline claims (the "shapes" of its
//! evaluation section), at test-suite scale.

use problp::ac::transform::binarize;
use problp::bounds::{
    fixed_query_bound, float_query_bound, optimize_fixed, optimize_float, AcAnalysis, BoundsError,
};
use problp::prelude::*;

/// Claim (§3.2.2 / Table 2): fixed point cannot serve relative-error
/// conditional queries; ProbLP always chooses float there.
#[test]
fn conditional_relative_always_selects_float() {
    for net in [
        problp::bayes::networks::sprinkler(),
        problp::bayes::networks::student(),
        problp::bayes::networks::asia(),
    ] {
        let ac = compile(&net).unwrap();
        let report = Problp::new(&ac)
            .query(QueryType::Conditional)
            .tolerance(Tolerance::Relative(0.01))
            .skip_rtl()
            .run()
            .unwrap();
        assert!(report.selected.repr.is_float());
        assert_eq!(
            report.fixed_failure,
            Some(BoundsError::FixedUnsupportedForQuery)
        );
    }
}

/// Claim (Table 2, HAR rows): relative-error and conditional queries on
/// classifier circuits with tiny outputs push fixed point beyond 64
/// fraction bits (reported as `>64`), while float stays cheap.
#[test]
fn tiny_outputs_break_fixed_point() {
    let bench = problp::data::uiwads_benchmark(3);
    let ac = binarize(&compile(&bench.net).unwrap()).unwrap();
    let analysis = AcAnalysis::new(&ac).unwrap();
    // min Pr(e) is small for 6 observed features.
    assert!(analysis.root_min_positive() < 1e-4);
    let fixed = optimize_fixed(
        &ac,
        &analysis,
        QueryType::Conditional,
        Tolerance::Absolute(0.01),
        LeafErrorModel::WorstCase,
        64,
    );
    let float = optimize_float(
        &ac,
        &analysis,
        QueryType::Conditional,
        Tolerance::Absolute(0.01),
        64,
    )
    .unwrap();
    // Fixed needs far more bits than float, if it is feasible at all.
    match fixed {
        Err(BoundsError::ToleranceUnreachable { .. }) => {}
        Ok(choice) => assert!(
            choice.format.frac_bits() > float.format.mant_bits() + 8,
            "fixed {} vs float {}",
            choice.format,
            float.format
        ),
        Err(other) => panic!("unexpected failure {other:?}"),
    }
}

/// Claim (§3.1.3): the fixed-point bound constant depends on the circuit,
/// and grows with circuit size.
#[test]
fn bounds_grow_with_circuit_size() {
    let small = binarize(&compile(&problp::bayes::networks::figure1()).unwrap()).unwrap();
    let big = binarize(&compile(&problp::bayes::networks::alarm(7)).unwrap()).unwrap();
    let f = FixedFormat::new(1, 16).unwrap();
    let b_small = fixed_query_bound(
        &small,
        &AcAnalysis::new(&small).unwrap(),
        f,
        QueryType::Marginal,
        Tolerance::Absolute(1.0),
        LeafErrorModel::WorstCase,
    )
    .unwrap();
    let b_big = fixed_query_bound(
        &big,
        &AcAnalysis::new(&big).unwrap(),
        f,
        QueryType::Marginal,
        Tolerance::Absolute(1.0),
        LeafErrorModel::WorstCase,
    )
    .unwrap();
    assert!(b_big > 10.0 * b_small);
}

/// Claim (Fig. 5): analytical bounds dominate the observed max error for
/// every bit width, for both representations.
#[test]
fn bounds_dominate_observed_errors_on_alarm() {
    let bench = problp::data::alarm_benchmark(7, 30);
    let ac = binarize(&compile(&bench.net).unwrap()).unwrap();
    let analysis = AcAnalysis::new(&ac).unwrap();
    for frac in [8u32, 16, 24] {
        let format = FixedFormat::new(1, frac).unwrap();
        let bound = fixed_query_bound(
            &ac,
            &analysis,
            format,
            QueryType::Marginal,
            Tolerance::Absolute(1.0),
            LeafErrorModel::WorstCase,
        )
        .unwrap();
        let stats = measure_errors(
            &ac,
            Representation::Fixed(format),
            QueryType::Marginal,
            bench.query_var,
            &bench.test_evidence,
        )
        .unwrap();
        assert!(
            stats.max_abs <= bound,
            "F={frac}: observed {} > bound {bound}",
            stats.max_abs
        );
    }
    for mant in [8u32, 16, 24] {
        let format = FloatFormat::new(9, mant).unwrap();
        let bound = float_query_bound(
            &ac,
            &analysis,
            format,
            QueryType::Marginal,
            Tolerance::Relative(1.0),
        )
        .unwrap();
        let stats = measure_errors(
            &ac,
            Representation::Float(format),
            QueryType::Marginal,
            bench.query_var,
            &bench.test_evidence,
        )
        .unwrap();
        assert!(
            stats.max_rel <= bound,
            "M={mant}: observed {} > bound {bound}",
            stats.max_rel
        );
        assert!(!stats.flags.range_violation());
    }
}

/// Claim (Table 2): the chosen low-precision representation costs
/// substantially less energy than a 32-bit float datapath.
#[test]
fn low_precision_beats_float32_energy() {
    for net in [
        problp::bayes::networks::asia(),
        problp::bayes::networks::alarm(7),
    ] {
        let ac = compile(&net).unwrap();
        let report = Problp::new(&ac)
            .query(QueryType::Marginal)
            .tolerance(Tolerance::Absolute(0.01))
            .skip_rtl()
            .run()
            .unwrap();
        assert!(
            report.saving_vs_float32() > 1.5,
            "saving only {:.2}x",
            report.saving_vs_float32()
        );
    }
}

/// Claim (Table 2): the paper's benchmark ordering HAR > UniMiB > UIWADS
/// in circuit size and therefore in energy.
#[test]
fn benchmark_energy_ordering() {
    let energies: Vec<f64> = [
        problp::data::har_benchmark(1),
        problp::data::unimib_benchmark(1),
        problp::data::uiwads_benchmark(1),
    ]
    .iter()
    .map(|bench| {
        let ac = compile(&bench.net).unwrap();
        Problp::new(&ac)
            .query(QueryType::Marginal)
            .tolerance(Tolerance::Absolute(0.01))
            .skip_rtl()
            .run()
            .unwrap()
            .selected
            .energy
            .total_nj()
    })
    .collect();
    assert!(energies[0] > energies[1], "HAR > UNIMIB");
    assert!(energies[1] > energies[2], "UNIMIB > UIWADS");
}

/// Claim (§3.1.4): exponent bits are sized so no overflow or underflow
/// occurs anywhere in the circuit — and one bit less would violate it.
#[test]
fn exponent_sizing_is_tight_on_alarm() {
    let bench = problp::data::alarm_benchmark(7, 10);
    let ac = binarize(&compile(&bench.net).unwrap()).unwrap();
    let report = Problp::new(&ac)
        .query(QueryType::Conditional)
        .tolerance(Tolerance::Relative(0.01))
        .skip_rtl()
        .run()
        .unwrap();
    let format = report.selected.repr.as_float().unwrap();
    // Running the whole test set raises no range flags.
    let stats = measure_errors(
        &ac,
        report.selected.repr,
        QueryType::Conditional,
        bench.query_var,
        &bench.test_evidence,
    )
    .unwrap();
    assert!(!stats.flags.range_violation());
    // One exponent bit less cannot cover the value range the min/max
    // analyses proved reachable (tightness of the sizing).
    let analysis = AcAnalysis::new(&ac).unwrap();
    let narrower = FloatFormat::new(format.exp_bits() - 1, format.mant_bits()).unwrap();
    let covers = analysis.global_min_positive() >= narrower.min_positive()
        && analysis.global_max() <= narrower.max_finite();
    assert!(!covers, "E-1 should not cover alarm's value range");
}
