//! End-to-end reproduction of the paper's running example (Figures 1, 3
//! and 4): the `A → {B, C}` network, its compiled AC, the error
//! propagation through it, and its conversion to pipelined hardware.

use problp::ac::transform::binarize;
use problp::bounds::{fixed_error_bound, AcAnalysis};
use problp::prelude::*;

fn figure1_network() -> BayesNet {
    problp::bayes::networks::figure1()
}

#[test]
fn evidence_indicators_follow_the_paper() {
    // Paper §2: e = {A = a1, C = c3} sets λ_a2 = λ_c1 = λ_c2 = 0 and the
    // rest to 1 (0-based here: A=0, C=2).
    let net = figure1_network();
    let mut e = Evidence::empty(3);
    let a = net.find("A").unwrap();
    let c = net.find("C").unwrap();
    e.observe(a, 0);
    e.observe(c, 2);
    assert_eq!(e.indicator(a, 0), 1.0);
    assert_eq!(e.indicator(a, 1), 0.0);
    assert_eq!(e.indicator(c, 0), 0.0);
    assert_eq!(e.indicator(c, 1), 0.0);
    assert_eq!(e.indicator(c, 2), 1.0);
    // B unobserved: both indicators 1.
    let b = net.find("B").unwrap();
    assert_eq!(e.indicator(b, 0), 1.0);
    assert_eq!(e.indicator(b, 1), 1.0);
}

#[test]
fn compiled_circuit_computes_the_network_polynomial() {
    let net = figure1_network();
    let ac = compile(&net).unwrap();
    // Upward pass with the paper's evidence.
    let mut e = Evidence::empty(3);
    e.observe(net.find("A").unwrap(), 0);
    e.observe(net.find("C").unwrap(), 2);
    let pr = ac.evaluate(&e).unwrap();
    assert!((pr - 0.6 * 0.2).abs() < 1e-12);
    // The oracle agrees on every query.
    for v in 0..3 {
        let var = VarId::from_index(v);
        for s in 0..net.variable(var).arity() {
            let mut e = Evidence::empty(3);
            e.observe(var, s);
            assert!((ac.evaluate(&e).unwrap() - net.marginal(&e)).abs() < 1e-12);
        }
    }
}

#[test]
fn error_propagation_matches_hand_calculation() {
    // Figure 3's flavour on the real Figure 1 circuit: the root bound is
    // reproducible by running the recursion by hand over node bounds.
    let net = figure1_network();
    let ac = binarize(&compile(&net).unwrap()).unwrap();
    let analysis = AcAnalysis::new(&ac).unwrap();
    let format = FixedFormat::new(1, 8).unwrap();
    let bound = fixed_error_bound(&ac, &analysis, format, LeafErrorModel::WorstCase).unwrap();
    // Manual recursion over the same graph.
    let u = format.conversion_error_bound();
    let mut manual = vec![0.0f64; ac.len()];
    for (i, node) in ac.nodes().iter().enumerate() {
        use problp::ac::AcNode;
        manual[i] = match node {
            AcNode::Indicator { .. } => 0.0,
            AcNode::Param { .. } => u,
            AcNode::Sum(c) => manual[c[0].index()] + manual[c[1].index()],
            AcNode::Product(c) => {
                let (x, y) = (c[0].index(), c[1].index());
                analysis.max_values()[x] * manual[y]
                    + analysis.max_values()[y] * manual[x]
                    + manual[x] * manual[y]
                    + u
            }
        };
    }
    let root = ac.root().unwrap().index();
    assert_eq!(bound.root_bound(), manual[root]);
}

#[test]
fn hardware_conversion_matches_figure4_structure() {
    // Binary decomposition + balancing registers, validated by the
    // cycle-accurate simulator.
    let net = figure1_network();
    let ac = binarize(&compile(&net).unwrap()).unwrap();
    assert!(ac.is_binary());
    let format = FixedFormat::new(1, 10).unwrap();
    let nl = Netlist::from_ac(&ac, Representation::Fixed(format)).unwrap();
    let stats = nl.stats();
    assert_eq!(
        stats.adds + stats.muls,
        ac.stats().sums + ac.stats().products
    );
    // Pipeline registers appear wherever path timings mismatch.
    assert!(stats.balance_regs > 0, "figure-1 circuit has skewed paths");
    // The pipelined hardware is bit-exact with software evaluation.
    let mut e = Evidence::empty(3);
    e.observe(net.find("A").unwrap(), 1);
    let mut sw = FixedArith::new(format);
    let expect = ac.evaluate_with(&mut sw, &e, Semiring::SumProduct).unwrap();
    let mut sim = PipelineSim::new(&nl, FixedArith::new(format));
    let got = sim.run(&e).unwrap();
    assert_eq!(got.raw(), expect.raw());
}

#[test]
fn full_pipeline_on_the_figure1_circuit() {
    let net = figure1_network();
    let ac = compile(&net).unwrap();
    let report = Problp::new(&ac)
        .query(QueryType::Marginal)
        .tolerance(Tolerance::Absolute(0.01))
        .run()
        .unwrap();
    assert!(report.selected.bound <= 0.01);
    assert!(report.hardware.verilog.contains("problp_ac_top"));
    // Verify the guarantee empirically on all single-variable evidences.
    let bin = binarize(&ac).unwrap();
    let evidences: Vec<Evidence> = (0..3)
        .flat_map(|v| {
            let arity = net.variable(VarId::from_index(v)).arity();
            (0..arity).map(move |s| {
                let mut e = Evidence::empty(3);
                e.observe(VarId::from_index(v), s);
                e
            })
        })
        .collect();
    let stats = measure_errors(
        &bin,
        report.selected.repr,
        QueryType::Marginal,
        VarId::from_index(0),
        &evidences,
    )
    .unwrap();
    assert!(stats.max_abs <= report.selected.bound);
    assert!(!stats.flags.range_violation());
}
