//! Whole-framework integration tests: network → circuit → bounds →
//! selection → hardware, with empirical validation at every joint.

use problp::ac::transform::binarize;
use problp::prelude::*;

/// Runs the full pipeline on a network and validates the guarantees.
fn validate_pipeline(net: &BayesNet, query: QueryType, tolerance: Tolerance) {
    let ac = compile(net).unwrap();
    let report = Problp::new(&ac)
        .query(query)
        .tolerance(tolerance)
        .run()
        .unwrap();
    // The guarantee holds by construction.
    assert!(report.selected.bound <= tolerance.value());
    // The selected representation is the cheaper feasible one.
    if let (Some(fx), Some(fl)) = (&report.fixed, &report.float) {
        let min = fx.energy.total_nj().min(fl.energy.total_nj());
        assert_eq!(report.selected.energy.total_nj(), min);
    }
    // Empirically: observed error within bound over single-var evidences.
    let bin = binarize(&ac).unwrap();
    let evidences: Vec<Evidence> = (0..net.var_count())
        .flat_map(|v| {
            let arity = net.variable(VarId::from_index(v)).arity();
            (0..arity).map(move |s| {
                let mut e = Evidence::empty(net.var_count());
                e.observe(VarId::from_index(v), s);
                e
            })
        })
        .collect();
    let query_var = net.roots()[0];
    let stats = measure_errors(&bin, report.selected.repr, query, query_var, &evidences).unwrap();
    let observed = match tolerance {
        Tolerance::Absolute(_) => stats.max_abs,
        Tolerance::Relative(_) => stats.max_rel,
    };
    assert!(
        observed <= report.selected.bound * (1.0 + 1e-9),
        "{query:?}/{tolerance:?}: observed {observed} > bound {}",
        report.selected.bound
    );
    assert!(
        !stats.flags.range_violation(),
        "bounds require in-range arithmetic"
    );
    // The hardware matches the software bit-for-bit on a sample query.
    let nl = Netlist::from_ac(&bin, report.selected.repr).unwrap();
    let e = &evidences[0];
    match report.selected.repr {
        Representation::Fixed(f) => {
            let mut sw = FixedArith::new(f);
            let expect = bin.evaluate_with(&mut sw, e, Semiring::SumProduct).unwrap();
            let mut sim = PipelineSim::new(&nl, FixedArith::new(f));
            assert_eq!(sim.run(e).unwrap().raw(), expect.raw());
        }
        Representation::Float(f) => {
            let mut sw = FloatArith::new(f);
            let expect = bin.evaluate_with(&mut sw, e, Semiring::SumProduct).unwrap();
            let mut sim = PipelineSim::new(&nl, FloatArith::new(f));
            assert_eq!(sim.run(e).unwrap(), expect);
        }
    }
}

#[test]
fn sprinkler_marginal_absolute() {
    validate_pipeline(
        &problp::bayes::networks::sprinkler(),
        QueryType::Marginal,
        Tolerance::Absolute(0.01),
    );
}

#[test]
fn sprinkler_marginal_relative() {
    validate_pipeline(
        &problp::bayes::networks::sprinkler(),
        QueryType::Marginal,
        Tolerance::Relative(0.05),
    );
}

#[test]
fn asia_marginal_absolute() {
    validate_pipeline(
        &problp::bayes::networks::asia(),
        QueryType::Marginal,
        Tolerance::Absolute(0.01),
    );
}

#[test]
fn student_conditional_relative() {
    validate_pipeline(
        &problp::bayes::networks::student(),
        QueryType::Conditional,
        Tolerance::Relative(0.01),
    );
}

#[test]
fn student_conditional_absolute() {
    validate_pipeline(
        &problp::bayes::networks::student(),
        QueryType::Conditional,
        Tolerance::Absolute(0.01),
    );
}

#[test]
fn figure1_mpe_absolute() {
    validate_pipeline(
        &problp::bayes::networks::figure1(),
        QueryType::Mpe,
        Tolerance::Absolute(0.01),
    );
}

#[test]
fn random_networks_survive_the_pipeline() {
    for seed in 0..4 {
        let net = problp::bayes::networks::random_network(seed, 6, 2, 3);
        validate_pipeline(&net, QueryType::Marginal, Tolerance::Absolute(0.02));
    }
}

#[test]
fn classifier_benchmark_end_to_end() {
    // UIWADS (the smallest classifier benchmark) through the whole stack.
    let bench = problp::data::uiwads_benchmark(3);
    let ac = compile(&bench.net).unwrap();
    let report = Problp::new(&ac)
        .query(QueryType::Conditional)
        .tolerance(Tolerance::Relative(0.01))
        .skip_rtl()
        .run()
        .unwrap();
    assert!(
        report.selected.repr.is_float(),
        "conditional+relative needs float"
    );
    let bin = binarize(&ac).unwrap();
    let stats = measure_errors(
        &bin,
        report.selected.repr,
        QueryType::Conditional,
        bench.query_var,
        &bench.test_evidence[..50],
    )
    .unwrap();
    assert!(stats.max_rel <= report.selected.bound);
    assert!(!stats.flags.range_violation());
}

#[test]
fn alarm_through_the_pipeline() {
    let bench = problp::data::alarm_benchmark(7, 25);
    let ac = compile(&bench.net).unwrap();
    let report = Problp::new(&ac)
        .query(QueryType::Marginal)
        .tolerance(Tolerance::Absolute(0.01))
        .skip_rtl()
        .run()
        .unwrap();
    // Table 2's Alarm row: fixed point wins, with I = 1.
    assert!(report.selected.repr.is_fixed());
    assert_eq!(report.selected.repr.as_fixed().unwrap().int_bits(), 1);
    let bin = binarize(&ac).unwrap();
    let stats = measure_errors(
        &bin,
        report.selected.repr,
        QueryType::Marginal,
        bench.query_var,
        &bench.test_evidence,
    )
    .unwrap();
    assert!(stats.max_abs <= report.selected.bound);
    assert!(stats.max_abs <= 0.01, "tolerance respected on the test set");
}
