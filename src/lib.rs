//! # ProbLP — a framework for low-precision probabilistic inference
//!
//! A from-scratch Rust reproduction of *ProbLP: A framework for
//! low-precision probabilistic inference* (Shah, Galindez Olascoaga,
//! Meert, Verhelst — DAC 2019).
//!
//! Given an arithmetic circuit compiled from a Bayesian network, a query
//! type and an error tolerance, ProbLP derives worst-case error bounds
//! for fixed- and floating-point arithmetic over the whole circuit, sizes
//! the minimal bit widths, selects the more energy-efficient
//! representation using TSMC 65 nm operator models, and generates
//! fully-pipelined custom-precision Verilog.
//!
//! This facade crate re-exports the workspace's sub-crates:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`num`] | `problp-num` | fixed-point / soft-float arithmetic, flags |
//! | [`bayes`] | `problp-bayes` | Bayesian networks, naive Bayes, ALARM |
//! | [`ac`] | `problp-ac` | arithmetic circuits, BN→AC compiler |
//! | [`bounds`] | `problp-bounds` | error analyses and bit-width search |
//! | [`engine`] | `problp-engine` | batched multi-threaded AC execution (tape compiler + SoA evaluator, marginal/MPE/conditional serving) |
//! | [`conformance`] | `problp-conformance` | differential cross-check: scalar vs tape vs schedule vs pipeline, bit for bit |
//! | [`energy`] | `problp-energy` | Table 1 models, gate-level estimator |
//! | [`hw`] | `problp-hw` | netlist, pipeline simulator, Verilog |
//! | [`data`] | `problp-data` | synthetic benchmarks, Alarm test sets |
//! | [`core`] | `problp-core` | the Fig. 2 pipeline and measurements |
//! | [`bench`](mod@bench) | `problp-bench` | tables/figures harness, accuracy studies |
//! | [`telemetry`] | `problp-telemetry` | metrics registry, span tracing, `/metrics` sidecar |
//!
//! # Quickstart
//!
//! Build a network, compile it to an arithmetic circuit, and query it
//! (the paper's Fig. 1 example — `cargo run --example quickstart` walks
//! the same flow):
//!
//! ```
//! use problp::prelude::*;
//!
//! // 1. A Bayesian network: A -> B, A -> C (paper Fig. 1a).
//! let mut builder = BayesNetBuilder::new();
//! let a = builder.variable("A", 2);
//! let b = builder.variable("B", 2);
//! let c = builder.variable("C", 3);
//! builder.cpt(a, [], [0.6, 0.4])?;
//! builder.cpt(b, [a], [0.7, 0.3, 0.2, 0.8])?;
//! builder.cpt(c, [a], [0.5, 0.3, 0.2, 0.1, 0.4, 0.5])?;
//! let network = builder.build()?;
//!
//! // 2. Compile to an arithmetic circuit (Fig. 1b) and evaluate it.
//! let circuit = compile(&network)?;
//! let mut evidence = Evidence::empty(network.var_count());
//! evidence.observe(a, 0); // A = a1 in the paper's 1-based notation
//! evidence.observe(c, 2); // C = c3
//! assert!((circuit.evaluate(&evidence)? - 0.6 * 0.2).abs() < 1e-12);
//!
//! // 3. Run ProbLP: bounds, bit widths, energy, representation, RTL.
//! let report = Problp::new(&circuit)
//!     .query(QueryType::Marginal)
//!     .tolerance(Tolerance::Absolute(0.01))
//!     .run()?;
//! assert!(report.selected.bound <= 0.01);
//!
//! // 4. The low-precision circuit keeps the query within tolerance.
//! let stats = measure_errors(
//!     &problp::ac::transform::binarize(&circuit)?,
//!     report.selected.repr,
//!     QueryType::Marginal,
//!     a,
//!     &[evidence],
//! )?;
//! assert!(stats.max_abs <= report.selected.bound);
//!
//! // 5. And the hardware is part of the report.
//! assert!(report.hardware.verilog.contains("problp_ac_top"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Batched serving
//!
//! Bulk workloads go through the execution engine: pack the instances
//! into one columnar [`EvidenceBatch`](bayes::EvidenceBatch) and serve
//! marginal, MPE or conditional queries per tape sweep:
//!
//! ```
//! use problp::prelude::*;
//!
//! let network = problp::bayes::networks::sprinkler();
//! let circuit = compile(&network)?;
//! let batch = EvidenceBatch::from_evidences(
//!     network.var_count(),
//!     &[Evidence::empty(network.var_count())],
//! )?;
//!
//! // Marginals: Pr(e) per lane.
//! let engine = Engine::from_graph(&circuit, Semiring::SumProduct, F64Arith::new())?;
//! let marginals = engine.evaluate_batch(&batch)?;
//! assert!((marginals.values[0] - 1.0).abs() < 1e-12);
//!
//! // Conditionals: joint/marginal lane pairs, ratio outside the AC.
//! let rain = network.find("Rain").unwrap();
//! let cond = engine.conditional_batch(&batch, rain)?;
//! assert!((cond.posteriors[0].iter().sum::<f64>() - 1.0).abs() < 1e-9);
//!
//! // MPE: max-product argmax traceback on a full-values tape.
//! let decoder = Engine::from_graph_full(&circuit, Semiring::MaxProduct, F64Arith::new())?;
//! let mpe = decoder.mpe_batch(&batch)?;
//! let (oracle, value) = network.mpe(&Evidence::empty(network.var_count()));
//! assert_eq!(mpe.assignments[0], oracle);
//! assert!((mpe.values[0] - value).abs() < 1e-12);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use problp_ac as ac;
pub use problp_bayes as bayes;
pub use problp_bench as bench;
pub use problp_bounds as bounds;
pub use problp_conformance as conformance;
pub use problp_core as core;
pub use problp_data as data;
pub use problp_energy as energy;
pub use problp_engine as engine;
pub use problp_engine::serve::gateway;
pub use problp_hw as hw;
pub use problp_num as num;
pub use problp_telemetry as telemetry;
pub use problp_verify as verify;

/// The most common imports for working with ProbLP.
pub mod prelude {
    pub use problp_ac::{compile, compile_naive_bayes, optimize, AcGraph, Semiring};
    pub use problp_bayes::{
        BatchQuery, BayesNet, BayesNetBuilder, Evidence, EvidenceBatch, NaiveBayes, VarId,
    };
    pub use problp_bounds::{LeafErrorModel, QueryType, Tolerance};
    pub use problp_conformance::{run_conformance, ConformanceConfig, ConformanceReport};
    pub use problp_core::{measure_errors, Problp, Report};
    pub use problp_engine::{
        CircuitPool, Engine, Gateway, GatewayConfig, Priority, ServeConfig, ServeRequest,
        ServeResponse, Server, ServerStats, Tape, TapeMode,
    };
    pub use problp_hw::{emit_testbench, emit_verilog, Netlist, PipelineSim};
    pub use problp_num::{
        Arith, F64Arith, FixedArith, FixedFormat, FixedRounding, FloatArith, FloatFormat,
        Representation,
    };
}
