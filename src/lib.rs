//! # ProbLP — a framework for low-precision probabilistic inference
//!
//! A from-scratch Rust reproduction of *ProbLP: A framework for
//! low-precision probabilistic inference* (Shah, Galindez Olascoaga,
//! Meert, Verhelst — DAC 2019).
//!
//! Given an arithmetic circuit compiled from a Bayesian network, a query
//! type and an error tolerance, ProbLP derives worst-case error bounds
//! for fixed- and floating-point arithmetic over the whole circuit, sizes
//! the minimal bit widths, selects the more energy-efficient
//! representation using TSMC 65 nm operator models, and generates
//! fully-pipelined custom-precision Verilog.
//!
//! This facade crate re-exports the workspace's sub-crates:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`num`] | `problp-num` | fixed-point / soft-float arithmetic, flags |
//! | [`bayes`] | `problp-bayes` | Bayesian networks, naive Bayes, ALARM |
//! | [`ac`] | `problp-ac` | arithmetic circuits, BN→AC compiler |
//! | [`bounds`] | `problp-bounds` | error analyses and bit-width search |
//! | [`engine`] | `problp-engine` | batched multi-threaded AC execution (tape compiler + SoA evaluator) |
//! | [`energy`] | `problp-energy` | Table 1 models, gate-level estimator |
//! | [`hw`] | `problp-hw` | netlist, pipeline simulator, Verilog |
//! | [`data`] | `problp-data` | synthetic benchmarks, Alarm test sets |
//! | [`core`] | `problp-core` | the Fig. 2 pipeline and measurements |
//!
//! # Quickstart
//!
//! ```
//! use problp::prelude::*;
//!
//! let network = problp::bayes::networks::alarm(7);
//! let circuit = problp::ac::compile(&network)?;
//! let report = Problp::new(&circuit)
//!     .query(QueryType::Marginal)
//!     .tolerance(Tolerance::Absolute(0.01))
//!     .run()?;
//! println!("{report}");
//! assert!(report.selected.bound <= 0.01);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use problp_ac as ac;
pub use problp_bayes as bayes;
pub use problp_bounds as bounds;
pub use problp_core as core;
pub use problp_data as data;
pub use problp_energy as energy;
pub use problp_engine as engine;
pub use problp_hw as hw;
pub use problp_num as num;

/// The most common imports for working with ProbLP.
pub mod prelude {
    pub use problp_ac::{compile, compile_naive_bayes, optimize, AcGraph, Semiring};
    pub use problp_bayes::{BayesNet, BayesNetBuilder, Evidence, EvidenceBatch, NaiveBayes, VarId};
    pub use problp_bounds::{LeafErrorModel, QueryType, Tolerance};
    pub use problp_core::{measure_errors, Problp, Report};
    pub use problp_engine::{Engine, Tape};
    pub use problp_hw::{emit_testbench, emit_verilog, Netlist, PipelineSim};
    pub use problp_num::{
        Arith, F64Arith, FixedArith, FixedFormat, FixedRounding, FloatArith, FloatFormat,
        Representation,
    };
}
