//! The `problp` command-line interface: run the framework on a network
//! file and emit the report, the Verilog and a self-checking testbench.
//!
//! ```text
//! problp info       --network model.bn
//! problp run        --network model.bn --query marginal --tolerance abs:0.01 \
//!                   --out-dir build/
//! problp export     --network model.bn --dot circuit.dot
//! problp throughput --network model.bn --batch 1024 --threads 0 \
//!                   --query marginal|mpe|conditional [--query-var NAME]
//! problp accuracy   [--dataset HAR|UNIMIB|UIWADS] [--instances 300]
//! ```
//!
//! Networks use the plain-text `.bn` format of [`problp::bayes::io`].
//! `throughput` measures bulk-inference rates — the scalar tree-walk
//! versus the batched execution engine (`problp::engine`) at the given
//! batch size (`--threads 0` = all cores) — for all three query kinds:
//! marginal sweeps, MPE decoding (max-product argmax traceback) and
//! conditional posteriors (joint/marginal lane pairs). `accuracy` runs
//! the engine-served per-precision classifier accuracy study of
//! `problp::bench` on the synthetic sensing datasets.

use std::path::PathBuf;
use std::process::ExitCode;

use problp::ac::transform::binarize;
use problp::prelude::*;

struct RunArgs {
    network: PathBuf,
    query: QueryType,
    tolerance: Tolerance,
    out_dir: PathBuf,
    optimize: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  problp info       --network FILE [--optimize]
  problp run        --network FILE [--query marginal|conditional|mpe]
                    [--tolerance abs:X|rel:X] [--out-dir DIR] [--optimize]
  problp export     --network FILE --dot FILE
  problp throughput --network FILE [--batch N] [--threads N] [--optimize]
                    [--query marginal|mpe|conditional] [--query-var NAME]
  problp accuracy   [--dataset HAR|UNIMIB|UIWADS] [--instances N]"
    );
    ExitCode::from(2)
}

fn parse_tolerance(spec: &str) -> Option<Tolerance> {
    let (kind, value) = spec.split_once(':')?;
    let value: f64 = value.parse().ok()?;
    match kind {
        "abs" => Some(Tolerance::Absolute(value)),
        "rel" => Some(Tolerance::Relative(value)),
        _ => None,
    }
}

fn parse_query(spec: &str) -> Option<QueryType> {
    match spec {
        "marginal" => Some(QueryType::Marginal),
        "conditional" => Some(QueryType::Conditional),
        "mpe" => Some(QueryType::Mpe),
        _ => None,
    }
}

fn load_network(path: &PathBuf) -> Result<BayesNet, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    problp::bayes::io::from_text(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let mut network: Option<PathBuf> = None;
    let mut query = QueryType::Marginal;
    let mut query_var: Option<String> = None;
    let mut tolerance = Tolerance::Absolute(0.01);
    let mut out_dir = PathBuf::from(".");
    let mut dot: Option<PathBuf> = None;
    let mut optimize = false;
    let mut batch = 1024usize;
    let mut threads = 0usize;
    let mut dataset: Option<String> = None;
    let mut instances = 300usize;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--network" => network = it.next().map(PathBuf::from),
            "--batch" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                batch = n;
            }
            "--threads" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                threads = n;
            }
            "--instances" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                instances = n;
            }
            "--query" => {
                let Some(q) = it.next().and_then(|s| parse_query(s)) else {
                    return usage();
                };
                query = q;
            }
            "--query-var" => {
                let Some(v) = it.next() else {
                    return usage();
                };
                query_var = Some(v.clone());
            }
            "--dataset" => {
                let Some(v) = it.next() else {
                    return usage();
                };
                dataset = Some(v.clone());
            }
            "--tolerance" => {
                let Some(t) = it.next().and_then(|s| parse_tolerance(s)) else {
                    return usage();
                };
                tolerance = t;
            }
            "--out-dir" => out_dir = it.next().map(PathBuf::from).unwrap_or(out_dir),
            "--dot" => dot = it.next().map(PathBuf::from),
            "--optimize" => optimize = true,
            _ => return usage(),
        }
    }

    // `accuracy` runs on the packaged classifier benchmarks, no network
    // file involved.
    if command == "accuracy" {
        let names: Vec<&str> = match &dataset {
            Some(d) => vec![d.as_str()],
            None => vec!["HAR", "UNIMIB", "UIWADS"],
        };
        if let Some(bad) = names
            .iter()
            .find(|n| !matches!(**n, "HAR" | "UNIMIB" | "UIWADS"))
        {
            eprintln!("error: unknown dataset {bad} (expected HAR, UNIMIB or UIWADS)");
            return ExitCode::FAILURE;
        }
        print!(
            "{}",
            problp::bench::accuracy_study_report(&names, instances)
        );
        return ExitCode::SUCCESS;
    }

    let Some(network_path) = network else {
        return usage();
    };
    let net = match load_network(&network_path) {
        Ok(net) => net,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let circuit = match compile(&net) {
        Ok(ac) => ac,
        Err(e) => {
            eprintln!("error: compilation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let circuit = if optimize {
        match problp::ac::optimize(&circuit) {
            Ok((opt, stats)) => {
                eprintln!("optimized: {stats}");
                opt
            }
            Err(e) => {
                eprintln!("error: optimisation failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        circuit
    };

    match command.as_str() {
        "info" => {
            println!("network: {net}");
            println!("circuit: {}", circuit.stats());
            match binarize(&circuit) {
                Ok(bin) => println!("binarized: {}", bin.stats()),
                Err(e) => eprintln!("error: {e}"),
            }
            ExitCode::SUCCESS
        }
        "export" => {
            let Some(dot_path) = dot else {
                return usage();
            };
            if let Err(e) = std::fs::write(&dot_path, circuit.to_dot()) {
                eprintln!("error: cannot write {}: {e}", dot_path.display());
                return ExitCode::FAILURE;
            }
            println!("wrote {}", dot_path.display());
            ExitCode::SUCCESS
        }
        "throughput" => {
            match throughput(&net, &circuit, query, query_var.as_deref(), batch, threads) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "run" => {
            let run = RunArgs {
                network: network_path,
                query,
                tolerance,
                out_dir,
                optimize,
            };
            match execute(&net, &circuit, &run) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

/// Runs `f` repeatedly for at least ~0.3 s and returns its rate in units
/// of `per_call` outputs per second.
fn rate_of(mut f: impl FnMut(), per_call: usize) -> f64 {
    use std::time::Instant;
    f();
    let start = Instant::now();
    let mut calls = 0u64;
    while start.elapsed().as_secs_f64() < 0.3 {
        f();
        calls += 1;
    }
    calls as f64 * per_call as f64 / start.elapsed().as_secs_f64()
}

/// Measures bulk-inference throughput of the circuit — the scalar
/// tree-walk versus the batched execution engine — over `batch` evidence
/// instances cycling through the single-variable observations, for the
/// requested query kind (marginal sweeps, MPE decoding, or conditional
/// posteriors on `query_var`, defaulting to the network's first root).
fn throughput(
    net: &BayesNet,
    circuit: &AcGraph,
    query: QueryType,
    query_var: Option<&str>,
    batch: usize,
    threads: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    use problp::engine::Engine;

    let var_count = circuit.var_count();
    let pool = problp::bayes::single_variable_evidences(circuit.var_arities());
    let instances: Vec<Evidence> = (0..batch.max(1))
        .map(|i| pool[i % pool.len()].clone())
        .collect();
    let mut evidence_batch = problp::bayes::EvidenceBatch::new(var_count);
    for e in &instances {
        evidence_batch.push(e);
    }
    let n = instances.len();
    let cap_threads = |mut engine: Engine<F64Arith>| {
        if threads > 0 {
            engine = engine.with_threads(threads);
        }
        engine
    };

    let (label, scalar, batched) = match query {
        QueryType::Marginal => {
            let engine = cap_threads(Engine::from_graph(
                circuit,
                Semiring::SumProduct,
                F64Arith::new(),
            )?);
            println!("tape: {}", engine.tape());
            let scalar = rate_of(
                || {
                    for e in &instances {
                        std::hint::black_box(circuit.evaluate(e).expect("evaluates"));
                    }
                },
                n,
            );
            let batched = rate_of(
                || {
                    std::hint::black_box(engine.evaluate_batch(&evidence_batch).expect("serves"));
                },
                n,
            );
            ("marginals", scalar, batched)
        }
        QueryType::Mpe => {
            let engine = cap_threads(Engine::from_graph_full(
                circuit,
                Semiring::MaxProduct,
                F64Arith::new(),
            )?);
            println!("tape: {}", engine.tape());
            // The scalar decoder needs Σ arity evaluations per instance;
            // time it on a prefix so huge batches stay responsive.
            let prefix = &instances[..n.min(64)];
            let scalar = rate_of(
                || {
                    for e in prefix {
                        std::hint::black_box(circuit.mpe_assignment(e).expect("decodes"));
                    }
                },
                prefix.len(),
            );
            let batched = rate_of(
                || {
                    std::hint::black_box(engine.mpe_batch(&evidence_batch).expect("decodes"));
                },
                n,
            );
            ("MPE decodes", scalar, batched)
        }
        QueryType::Conditional => {
            let qv = match query_var {
                Some(name) => net
                    .find(name)
                    .ok_or_else(|| format!("no variable named {name}"))?,
                None => net.roots().first().copied().unwrap_or(VarId::from_index(0)),
            };
            let states = net.variable(qv).arity();
            println!(
                "query variable: {} ({} states)",
                net.variable(qv).name(),
                states
            );
            let engine = cap_threads(Engine::from_graph(
                circuit,
                Semiring::SumProduct,
                F64Arith::new(),
            )?);
            println!("tape: {}", engine.tape());
            let scalar = rate_of(
                || {
                    for e in &instances {
                        let den = circuit.evaluate(e).expect("evaluates");
                        for s in 0..states {
                            let mut with_q = e.clone();
                            with_q.observe(qv, s);
                            let num = circuit.evaluate(&with_q).expect("evaluates");
                            std::hint::black_box(num / den);
                        }
                    }
                },
                n,
            );
            let batched = rate_of(
                || {
                    std::hint::black_box(
                        engine
                            .conditional_batch(&evidence_batch, qv)
                            .expect("serves"),
                    );
                },
                n,
            );
            ("conditional queries", scalar, batched)
        }
    };
    println!("scalar tree-walk: {scalar:>12.0} {label}/s");
    println!(
        "batched engine:   {batched:>12.0} {label}/s  ({:.1}x)",
        batched / scalar
    );
    Ok(())
}

fn execute(
    net: &BayesNet,
    circuit: &AcGraph,
    args: &RunArgs,
) -> Result<(), Box<dyn std::error::Error>> {
    let report = Problp::new(circuit)
        .query(args.query)
        .tolerance(args.tolerance)
        .run()?;
    println!("{report}");

    std::fs::create_dir_all(&args.out_dir)?;
    let report_path = args.out_dir.join("report.txt");
    std::fs::write(
        &report_path,
        format!(
            "network: {}\noptimized: {}\n{report}\n",
            args.network.display(),
            args.optimize
        ),
    )?;
    let rtl_path = args.out_dir.join("problp_ac_top.v");
    std::fs::write(&rtl_path, &report.hardware.verilog)?;

    // A self-checking testbench over a few canonical vectors.
    let bin = binarize(circuit)?;
    let netlist = Netlist::from_ac(&bin, report.selected.repr)?;
    let mut vectors = vec![Evidence::empty(net.var_count())];
    for v in 0..net.var_count().min(4) {
        let mut e = Evidence::empty(net.var_count());
        e.observe(VarId::from_index(v), 0);
        vectors.push(e);
    }
    let tb_path = args.out_dir.join("problp_ac_tb.v");
    std::fs::write(&tb_path, problp::hw::emit_testbench(&netlist, &vectors)?)?;

    println!(
        "\nwrote {}, {}, {}",
        report_path.display(),
        rtl_path.display(),
        tb_path.display()
    );
    Ok(())
}
