//! The `problp` command-line interface: run the framework on a network
//! file and emit the report, the Verilog and a self-checking testbench.
//!
//! ```text
//! problp info       --network model.bn
//! problp run        --network model.bn --query marginal --tolerance abs:0.01 \
//!                   --out-dir build/
//! problp export     --network model.bn --dot circuit.dot
//! problp throughput --network model.bn --batch 1024 --threads 0
//! ```
//!
//! Networks use the plain-text `.bn` format of [`problp::bayes::io`].
//! `throughput` measures bulk-inference rates: the scalar tree-walk
//! versus the batched execution engine (`problp::engine`) at the given
//! batch size (`--threads 0` = all cores).

use std::path::PathBuf;
use std::process::ExitCode;

use problp::ac::transform::binarize;
use problp::prelude::*;

struct RunArgs {
    network: PathBuf,
    query: QueryType,
    tolerance: Tolerance,
    out_dir: PathBuf,
    optimize: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  problp info       --network FILE [--optimize]
  problp run        --network FILE [--query marginal|conditional|mpe]
                    [--tolerance abs:X|rel:X] [--out-dir DIR] [--optimize]
  problp export     --network FILE --dot FILE
  problp throughput --network FILE [--batch N] [--threads N] [--optimize]"
    );
    ExitCode::from(2)
}

fn parse_tolerance(spec: &str) -> Option<Tolerance> {
    let (kind, value) = spec.split_once(':')?;
    let value: f64 = value.parse().ok()?;
    match kind {
        "abs" => Some(Tolerance::Absolute(value)),
        "rel" => Some(Tolerance::Relative(value)),
        _ => None,
    }
}

fn parse_query(spec: &str) -> Option<QueryType> {
    match spec {
        "marginal" => Some(QueryType::Marginal),
        "conditional" => Some(QueryType::Conditional),
        "mpe" => Some(QueryType::Mpe),
        _ => None,
    }
}

fn load_network(path: &PathBuf) -> Result<BayesNet, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    problp::bayes::io::from_text(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let mut network: Option<PathBuf> = None;
    let mut query = QueryType::Marginal;
    let mut tolerance = Tolerance::Absolute(0.01);
    let mut out_dir = PathBuf::from(".");
    let mut dot: Option<PathBuf> = None;
    let mut optimize = false;
    let mut batch = 1024usize;
    let mut threads = 0usize;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--network" => network = it.next().map(PathBuf::from),
            "--batch" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                batch = n;
            }
            "--threads" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                threads = n;
            }
            "--query" => {
                let Some(q) = it.next().and_then(|s| parse_query(s)) else {
                    return usage();
                };
                query = q;
            }
            "--tolerance" => {
                let Some(t) = it.next().and_then(|s| parse_tolerance(s)) else {
                    return usage();
                };
                tolerance = t;
            }
            "--out-dir" => out_dir = it.next().map(PathBuf::from).unwrap_or(out_dir),
            "--dot" => dot = it.next().map(PathBuf::from),
            "--optimize" => optimize = true,
            _ => return usage(),
        }
    }
    let Some(network_path) = network else {
        return usage();
    };
    let net = match load_network(&network_path) {
        Ok(net) => net,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let circuit = match compile(&net) {
        Ok(ac) => ac,
        Err(e) => {
            eprintln!("error: compilation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let circuit = if optimize {
        match problp::ac::optimize(&circuit) {
            Ok((opt, stats)) => {
                eprintln!("optimized: {stats}");
                opt
            }
            Err(e) => {
                eprintln!("error: optimisation failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        circuit
    };

    match command.as_str() {
        "info" => {
            println!("network: {net}");
            println!("circuit: {}", circuit.stats());
            match binarize(&circuit) {
                Ok(bin) => println!("binarized: {}", bin.stats()),
                Err(e) => eprintln!("error: {e}"),
            }
            ExitCode::SUCCESS
        }
        "export" => {
            let Some(dot_path) = dot else {
                return usage();
            };
            if let Err(e) = std::fs::write(&dot_path, circuit.to_dot()) {
                eprintln!("error: cannot write {}: {e}", dot_path.display());
                return ExitCode::FAILURE;
            }
            println!("wrote {}", dot_path.display());
            ExitCode::SUCCESS
        }
        "throughput" => match throughput(&circuit, batch, threads) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        "run" => {
            let run = RunArgs {
                network: network_path,
                query,
                tolerance,
                out_dir,
                optimize,
            };
            match execute(&net, &circuit, &run) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

/// Measures bulk-inference throughput of the circuit: the scalar
/// tree-walk versus the batched execution engine, over `batch` evidence
/// instances cycling through the single-variable observations.
fn throughput(
    circuit: &AcGraph,
    batch: usize,
    threads: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    use problp::engine::Engine;
    use std::time::Instant;

    let var_count = circuit.var_count();
    let pool = problp::bayes::single_variable_evidences(circuit.var_arities());
    let instances: Vec<Evidence> = (0..batch.max(1))
        .map(|i| pool[i % pool.len()].clone())
        .collect();
    let mut evidence_batch = problp::bayes::EvidenceBatch::new(var_count);
    for e in &instances {
        evidence_batch.push(e);
    }

    let mut engine = Engine::from_graph(circuit, Semiring::SumProduct, F64Arith::new())?;
    if threads > 0 {
        engine = engine.with_threads(threads);
    }
    println!("tape: {}", engine.tape());

    let rate = |mut f: Box<dyn FnMut() + '_>| {
        f();
        let start = Instant::now();
        let mut calls = 0u64;
        while start.elapsed().as_secs_f64() < 0.3 {
            f();
            calls += 1;
        }
        calls as f64 * instances.len() as f64 / start.elapsed().as_secs_f64()
    };

    let scalar = rate(Box::new(|| {
        for e in &instances {
            std::hint::black_box(circuit.evaluate(e).expect("evaluates"));
        }
    }));
    let batched = rate(Box::new(|| {
        std::hint::black_box(engine.evaluate_batch(&evidence_batch).expect("evaluates"));
    }));
    println!("scalar tree-walk: {scalar:>12.0} evals/s");
    println!(
        "batched engine:   {batched:>12.0} evals/s  ({:.1}x)",
        batched / scalar
    );
    Ok(())
}

fn execute(
    net: &BayesNet,
    circuit: &AcGraph,
    args: &RunArgs,
) -> Result<(), Box<dyn std::error::Error>> {
    let report = Problp::new(circuit)
        .query(args.query)
        .tolerance(args.tolerance)
        .run()?;
    println!("{report}");

    std::fs::create_dir_all(&args.out_dir)?;
    let report_path = args.out_dir.join("report.txt");
    std::fs::write(
        &report_path,
        format!(
            "network: {}\noptimized: {}\n{report}\n",
            args.network.display(),
            args.optimize
        ),
    )?;
    let rtl_path = args.out_dir.join("problp_ac_top.v");
    std::fs::write(&rtl_path, &report.hardware.verilog)?;

    // A self-checking testbench over a few canonical vectors.
    let bin = binarize(circuit)?;
    let netlist = Netlist::from_ac(&bin, report.selected.repr)?;
    let mut vectors = vec![Evidence::empty(net.var_count())];
    for v in 0..net.var_count().min(4) {
        let mut e = Evidence::empty(net.var_count());
        e.observe(VarId::from_index(v), 0);
        vectors.push(e);
    }
    let tb_path = args.out_dir.join("problp_ac_tb.v");
    std::fs::write(&tb_path, problp::hw::emit_testbench(&netlist, &vectors)?)?;

    println!(
        "\nwrote {}, {}, {}",
        report_path.display(),
        rtl_path.display(),
        tb_path.display()
    );
    Ok(())
}
