//! The `problp` command-line interface: run the framework on a network
//! file and emit the report, the Verilog and a self-checking testbench.
//!
//! ```text
//! problp info       --network model.bn
//! problp run        --network model.bn --query marginal --tolerance abs:0.01 \
//!                   --out-dir build/
//! problp export     --network model.bn --dot circuit.dot
//! problp throughput --network model.bn --batch 1024 --threads 0 \
//!                   --query marginal|mpe|conditional [--query-var NAME]
//!                   [--kernel scalar|simd|fused]
//! problp accuracy   [--dataset HAR|UNIMIB|UIWADS] [--instances 300]
//! problp serve-sim  --models sprinkler,asia [--requests 512] [--max-batch 32]
//!                   [--max-wait-us 500] [--workers 4] [--seed 7]
//!                   [--tenant-quota 0] [--batch-share 0] [--aging-us 20000]
//!                   [--adaptive-wait] [--metrics-addr 127.0.0.1:0]
//!                   [--linger-ms 0] [--bench-json FILE]
//! problp conformance [--models alarm,asia] [--random 2] [--batch 256]
//!                   [--seed 7] [--repr f64,fixed:2.14,float:8.13]
//!                   [--inject-fault scalar|tape|tape-full|fused-compact|
//!                    fused-full|simd-compact|schedule|pipeline]
//! problp verify     [--models sprinkler,asia] [--repr f64,fixed:2.14,float:8.23]
//!                   [--seed 7] [--corrupt oob-reg|slot-oob|param-write|truncate]
//! problp lint-src   [--allow ci/lint-allow.txt]
//! ```
//!
//! Networks use the plain-text `.bn` format of [`problp::bayes::io`].
//! `throughput` measures bulk-inference rates — the scalar tree-walk
//! versus the batched execution engine (`problp::engine`) at the given
//! batch size (`--threads 0` = all cores) — for all three query kinds:
//! marginal sweeps, MPE decoding (max-product argmax traceback) and
//! conditional posteriors (joint/marginal lane pairs). `--kernel`
//! selects the engine's evaluator core: the scalar reference walk, the
//! SIMD lane-chunked kernels, or the fused superinstruction stream
//! (all three bit-identical; see `problp::engine::KernelKind`).
//! `accuracy` runs
//! the engine-served per-precision classifier accuracy study of
//! `problp::bench` on the synthetic sensing datasets. `serve-sim`
//! replays a seeded mixed-tenant request trace through the sharded
//! multi-circuit serving layer (`problp::engine::serve`: a
//! `CircuitPool` behind an admission queue and dispatcher shards),
//! verifies every admitted answer bit-identical against per-request
//! evaluation, and reports per-priority-class latency percentiles,
//! quota-reject counts and the batched-vs-scalar speedup. The QoS
//! policy knobs mirror `ServeConfig`: `--tenant-quota` caps each
//! model's queued + in-flight lanes (0 = off), `--batch-share` routes
//! that percentage of the trace to the `Batch` priority lane,
//! `--aging-us` is the anti-starvation promotion bound, and
//! `--adaptive-wait` shrinks the coalescing wait of hot streams.
//! `--models` takes built-in network names
//! (`figure1|sprinkler|asia|student|earthquake|cancer|alarm`) or `.bn`
//! paths, comma-separated.
//!
//! With `--metrics-addr HOST:PORT` (port 0 picks a free port),
//! `serve-sim` also starts the `problp::telemetry` observability
//! sidecar on that address — `/metrics` (Prometheus text),
//! `/healthz`, `/statz` (JSON) — backed by the server's live metric
//! registry, scrapes it once itself mid-trace as a self-check, and
//! prints the bound address so external scrapers can follow.
//! `--linger-ms N` keeps the sidecar (and the server) up for N extra
//! milliseconds after the trace completes, and `--bench-json FILE`
//! writes the run's machine-readable `problp-bench/v1` perf record
//! (validated by `reproduce check-bench`).
//!
//! `conformance` runs the differential cross-check of
//! `problp::conformance`: the same seeded evidence batch is evaluated on
//! the scalar tree-walk, the compact and full-values engine tapes, the
//! fused superinstruction streams of both tape modes, the SIMD
//! lane-chunked kernels, the sequential ALU schedule and the
//! cycle-accurate pipelined datapath
//! (streaming one lane per cycle), and every stream must be
//! bit-identical per arithmetic (`--repr`) and semiring. Without
//! `--models` it checks `sprinkler,asia` plus `--random` seeded random
//! networks (default 2). The exit code is non-zero on any divergence;
//! `--inject-fault` deliberately corrupts one backend's stream to prove
//! the harness detects it.
//!
//! `verify` runs the static-analysis subsystem (`problp::verify`) over
//! each model's tape: the Layer-1 structural verifier (compact and
//! fused streams), the Layer-2 fixed/float range analysis per `--repr`
//! arithmetic, and the minimal-safe-fixed-format search. It prints one
//! row per model plus the `problp_verify_*` counter totals and ends
//! with `verdict: PASS` / `verdict: FAIL` (non-zero exit). `--corrupt`
//! mutates each tape before verification — the verifier must reject it
//! with a typed error, so a corrupted run *failing* is the expected CI
//! outcome.
//!
//! `lint-src` enforces the serving-path panic policy: no `.unwrap()` /
//! `.expect(` in the non-test code of `crates/engine/src/serve.rs` and
//! `crates/telemetry/src` (scanning stops at the first `#[cfg(test)]`
//! line of each file). Exceptions live in `ci/lint-allow.txt` as
//! `file-suffix: line-substring` entries. Run it from the repository
//! root; non-zero exit on any violation.

use std::path::PathBuf;
use std::process::ExitCode;

use problp::ac::transform::binarize;
use problp::prelude::*;

struct RunArgs {
    network: PathBuf,
    query: QueryType,
    tolerance: Tolerance,
    out_dir: PathBuf,
    optimize: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  problp info       --network FILE [--optimize]
  problp run        --network FILE [--query marginal|conditional|mpe]
                    [--tolerance abs:X|rel:X] [--out-dir DIR] [--optimize]
  problp export     --network FILE --dot FILE
  problp throughput --network FILE [--batch N] [--threads N] [--optimize]
                    [--query marginal|mpe|conditional] [--query-var NAME]
                    [--kernel scalar|simd|fused]
  problp accuracy   [--dataset HAR|UNIMIB|UIWADS] [--instances N]
  problp serve-sim  --models NAME|FILE[,NAME|FILE...] [--requests N]
                    [--max-batch N] [--max-wait-us N] [--workers N] [--seed N]
                    [--tenant-quota N] [--batch-share PCT] [--aging-us N]
                    [--adaptive-wait] [--cache-capacity N]
                    [--reload-mid-trace] [--metrics-addr HOST:PORT]
                    [--linger-ms N] [--bench-json FILE]
  problp serve-http --models NAME|FILE[,NAME|FILE...] [--addr HOST:PORT]
                    [--tokens TOK=MODEL[,TOK=MODEL...]] [--http-workers N]
                    [--max-batch N] [--max-wait-us N] [--workers N]
                    [--tenant-quota N] [--cache-capacity N] [--seed N]
                    [--self-drive N] [--metrics-addr HOST:PORT]
                    [--linger-ms N] [--bench-json FILE]
  problp conformance [--models NAME|FILE[,...]] [--random N] [--batch N]
                    [--seed N] [--repr LIST] [--inject-fault BACKEND]
                    (LIST entries: f64 | fixed:I.F | float:E.M;
                     BACKEND: scalar|tape|tape-full|fused-compact|
                     fused-full|simd-compact|schedule|pipeline)
  problp verify     [--models NAME|FILE[,...]] [--repr LIST] [--seed N]
                    [--corrupt oob-reg|slot-oob|param-write|truncate]
  problp lint-src   [--allow FILE]"
    );
    ExitCode::from(2)
}

fn parse_tolerance(spec: &str) -> Option<Tolerance> {
    let (kind, value) = spec.split_once(':')?;
    let value: f64 = value.parse().ok()?;
    match kind {
        "abs" => Some(Tolerance::Absolute(value)),
        "rel" => Some(Tolerance::Relative(value)),
        _ => None,
    }
}

fn parse_query(spec: &str) -> Option<QueryType> {
    match spec {
        "marginal" => Some(QueryType::Marginal),
        "conditional" => Some(QueryType::Conditional),
        "mpe" => Some(QueryType::Mpe),
        _ => None,
    }
}

fn load_network(path: &PathBuf) -> Result<BayesNet, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    problp::bayes::io::from_text(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let mut network: Option<PathBuf> = None;
    let mut query = QueryType::Marginal;
    let mut query_var: Option<String> = None;
    let mut tolerance = Tolerance::Absolute(0.01);
    let mut out_dir = PathBuf::from(".");
    let mut dot: Option<PathBuf> = None;
    let mut optimize = false;
    // `--batch`: throughput defaults to 1024 lanes, conformance to 256.
    let mut batch: Option<usize> = None;
    let mut threads = 0usize;
    let mut dataset: Option<String> = None;
    let mut instances = 300usize;
    let mut models: Option<String> = None;
    let mut requests = 512usize;
    let mut max_batch = 32usize;
    let mut max_wait_us = 500u64;
    let mut workers = 4usize;
    let mut seed = 7u64;
    let mut tenant_quota = 0usize;
    let mut batch_share = 0u64;
    let mut aging_us = 20_000u64;
    let mut adaptive_wait = false;
    let mut cache_capacity = 0usize;
    let mut reload_mid_trace = false;
    let mut metrics_addr: Option<String> = None;
    let mut linger_ms = 0u64;
    let mut bench_json: Option<PathBuf> = None;
    let mut random: Option<usize> = None;
    let mut repr: Option<String> = None;
    let mut inject_fault: Option<String> = None;
    let mut corrupt: Option<String> = None;
    let mut allow = PathBuf::from("ci/lint-allow.txt");
    let mut kernel = problp::engine::KernelKind::Scalar;
    let mut addr = "127.0.0.1:0".to_string();
    let mut tokens: Option<String> = None;
    let mut http_workers = 4usize;
    let mut self_drive: Option<usize> = None;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--network" => network = it.next().map(PathBuf::from),
            "--models" => {
                let Some(m) = it.next() else {
                    return usage();
                };
                models = Some(m.clone());
            }
            "--requests" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                requests = n;
            }
            "--max-batch" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                max_batch = n;
            }
            "--max-wait-us" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                max_wait_us = n;
            }
            "--workers" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                workers = n;
            }
            "--seed" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                seed = n;
            }
            "--tenant-quota" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                tenant_quota = n;
            }
            "--batch-share" => {
                let Some(n) = it.next().and_then(|s| s.parse::<u64>().ok()) else {
                    return usage();
                };
                if n > 100 {
                    return usage();
                }
                batch_share = n;
            }
            "--aging-us" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                aging_us = n;
            }
            "--adaptive-wait" => adaptive_wait = true,
            "--cache-capacity" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                cache_capacity = n;
            }
            "--reload-mid-trace" => reload_mid_trace = true,
            "--addr" => {
                let Some(a) = it.next() else {
                    return usage();
                };
                addr = a.clone();
            }
            "--tokens" => {
                let Some(t) = it.next() else {
                    return usage();
                };
                tokens = Some(t.clone());
            }
            "--http-workers" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                http_workers = n;
            }
            "--self-drive" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                self_drive = Some(n);
            }
            "--metrics-addr" => {
                let Some(a) = it.next() else {
                    return usage();
                };
                metrics_addr = Some(a.clone());
            }
            "--linger-ms" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                linger_ms = n;
            }
            "--bench-json" => {
                let Some(p) = it.next() else {
                    return usage();
                };
                bench_json = Some(PathBuf::from(p));
            }
            "--random" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                random = Some(n);
            }
            "--repr" => {
                let Some(r) = it.next() else {
                    return usage();
                };
                repr = Some(r.clone());
            }
            "--inject-fault" => {
                let Some(b) = it.next() else {
                    return usage();
                };
                inject_fault = Some(b.clone());
            }
            "--corrupt" => {
                let Some(c) = it.next() else {
                    return usage();
                };
                corrupt = Some(c.clone());
            }
            "--allow" => {
                let Some(p) = it.next() else {
                    return usage();
                };
                allow = PathBuf::from(p);
            }
            "--kernel" => {
                let Some(k) = it.next().and_then(|s| problp::engine::KernelKind::parse(s)) else {
                    return usage();
                };
                kernel = k;
            }
            "--batch" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                batch = Some(n);
            }
            "--threads" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                threads = n;
            }
            "--instances" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                instances = n;
            }
            "--query" => {
                let Some(q) = it.next().and_then(|s| parse_query(s)) else {
                    return usage();
                };
                query = q;
            }
            "--query-var" => {
                let Some(v) = it.next() else {
                    return usage();
                };
                query_var = Some(v.clone());
            }
            "--dataset" => {
                let Some(v) = it.next() else {
                    return usage();
                };
                dataset = Some(v.clone());
            }
            "--tolerance" => {
                let Some(t) = it.next().and_then(|s| parse_tolerance(s)) else {
                    return usage();
                };
                tolerance = t;
            }
            "--out-dir" => out_dir = it.next().map(PathBuf::from).unwrap_or(out_dir),
            "--dot" => dot = it.next().map(PathBuf::from),
            "--optimize" => optimize = true,
            _ => return usage(),
        }
    }

    // `serve-sim` hosts many models at once; it has its own loading
    // path (built-in names or .bn files) instead of `--network`.
    if command == "serve-sim" {
        let Some(models) = models else {
            return usage();
        };
        let sim = ServeSimArgs {
            models,
            requests,
            max_batch,
            max_wait_us,
            workers,
            seed,
            tenant_quota,
            batch_share,
            aging_us,
            adaptive_wait,
            cache_capacity,
            reload_mid_trace,
            metrics_addr,
            linger_ms,
            bench_json,
        };
        return match serve_sim(&sim) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    // `serve-http` puts the query gateway in front of the same pooled
    // serving stack; it shares serve-sim's model loading.
    if command == "serve-http" {
        let Some(models) = models else {
            return usage();
        };
        let http = ServeHttpArgs {
            models,
            addr,
            tokens,
            http_workers,
            max_batch,
            max_wait_us,
            workers,
            seed,
            tenant_quota,
            cache_capacity,
            self_drive,
            metrics_addr,
            linger_ms,
            bench_json,
        };
        return match serve_http(&http) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    // `conformance` hosts many models too (named, file-based or
    // generated), so it shares serve-sim's loading path.
    if command == "conformance" {
        let args = ConformanceArgs {
            models,
            random,
            batch: batch.unwrap_or(256),
            seed,
            repr,
            inject_fault,
        };
        return match conformance(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    // `verify` shares serve-sim's model loading (built-in names or .bn
    // files) and never evaluates anything — it is pure static analysis.
    if command == "verify" {
        let args = VerifyArgs {
            models,
            repr,
            seed,
            corrupt,
        };
        return match verify_tapes(&args) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    // `lint-src` needs no models at all; it reads workspace sources.
    if command == "lint-src" {
        return match lint_src(&allow) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    // `accuracy` runs on the packaged classifier benchmarks, no network
    // file involved.
    if command == "accuracy" {
        let names: Vec<&str> = match &dataset {
            Some(d) => vec![d.as_str()],
            None => vec!["HAR", "UNIMIB", "UIWADS"],
        };
        if let Some(bad) = names
            .iter()
            .find(|n| !matches!(**n, "HAR" | "UNIMIB" | "UIWADS"))
        {
            eprintln!("error: unknown dataset {bad} (expected HAR, UNIMIB or UIWADS)");
            return ExitCode::FAILURE;
        }
        print!(
            "{}",
            problp::bench::accuracy_study_report(&names, instances)
        );
        return ExitCode::SUCCESS;
    }

    let Some(network_path) = network else {
        return usage();
    };
    let net = match load_network(&network_path) {
        Ok(net) => net,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let circuit = match compile(&net) {
        Ok(ac) => ac,
        Err(e) => {
            eprintln!("error: compilation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let circuit = if optimize {
        match problp::ac::optimize(&circuit) {
            Ok((opt, stats)) => {
                eprintln!("optimized: {stats}");
                opt
            }
            Err(e) => {
                eprintln!("error: optimisation failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        circuit
    };

    match command.as_str() {
        "info" => {
            println!("network: {net}");
            println!("circuit: {}", circuit.stats());
            match binarize(&circuit) {
                Ok(bin) => println!("binarized: {}", bin.stats()),
                Err(e) => eprintln!("error: {e}"),
            }
            ExitCode::SUCCESS
        }
        "export" => {
            let Some(dot_path) = dot else {
                return usage();
            };
            if let Err(e) = std::fs::write(&dot_path, circuit.to_dot()) {
                eprintln!("error: cannot write {}: {e}", dot_path.display());
                return ExitCode::FAILURE;
            }
            println!("wrote {}", dot_path.display());
            ExitCode::SUCCESS
        }
        "throughput" => {
            match throughput(
                &net,
                &circuit,
                query,
                query_var.as_deref(),
                batch.unwrap_or(1024),
                threads,
                kernel,
            ) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "run" => {
            let run = RunArgs {
                network: network_path,
                query,
                tolerance,
                out_dir,
                optimize,
            };
            match execute(&net, &circuit, &run) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

/// Runs `f` repeatedly for at least ~0.3 s and returns its rate in units
/// of `per_call` outputs per second.
fn rate_of(mut f: impl FnMut(), per_call: usize) -> f64 {
    use std::time::Instant;
    f();
    let start = Instant::now();
    let mut calls = 0u64;
    while start.elapsed().as_secs_f64() < 0.3 {
        f();
        calls += 1;
    }
    calls as f64 * per_call as f64 / start.elapsed().as_secs_f64()
}

/// Measures bulk-inference throughput of the circuit — the scalar
/// tree-walk versus the batched execution engine — over `batch` evidence
/// instances cycling through the single-variable observations, for the
/// requested query kind (marginal sweeps, MPE decoding, or conditional
/// posteriors on `query_var`, defaulting to the network's first root).
/// `kernel` selects the engine's evaluator core (scalar, SIMD
/// lane-chunked, or fused superinstructions — all bit-identical).
#[allow(clippy::too_many_arguments)]
fn throughput(
    net: &BayesNet,
    circuit: &AcGraph,
    query: QueryType,
    query_var: Option<&str>,
    batch: usize,
    threads: usize,
    kernel: problp::engine::KernelKind,
) -> Result<(), Box<dyn std::error::Error>> {
    use problp::engine::Engine;

    let var_count = circuit.var_count();
    let pool = problp::bayes::single_variable_evidences(circuit.var_arities());
    let instances: Vec<Evidence> = (0..batch.max(1))
        .map(|i| pool[i % pool.len()].clone())
        .collect();
    let mut evidence_batch = problp::bayes::EvidenceBatch::new(var_count);
    for e in &instances {
        evidence_batch.push(e);
    }
    let n = instances.len();
    let cap_threads = |mut engine: Engine<F64Arith>| {
        if threads > 0 {
            engine = engine.with_threads(threads);
        }
        engine = engine.with_kernel(kernel);
        if let Some(stats) = engine.fuse_stats() {
            println!("fusion: {stats}");
        }
        engine
    };
    println!("kernel: {kernel}");

    let (label, scalar, batched) = match query {
        QueryType::Marginal => {
            let engine = cap_threads(Engine::from_graph(
                circuit,
                Semiring::SumProduct,
                F64Arith::new(),
            )?);
            println!("tape: {}", engine.tape());
            let scalar = rate_of(
                || {
                    for e in &instances {
                        std::hint::black_box(circuit.evaluate(e).expect("evaluates"));
                    }
                },
                n,
            );
            let batched = rate_of(
                || {
                    std::hint::black_box(engine.evaluate_batch(&evidence_batch).expect("serves"));
                },
                n,
            );
            ("marginals", scalar, batched)
        }
        QueryType::Mpe => {
            let engine = cap_threads(Engine::from_graph_full(
                circuit,
                Semiring::MaxProduct,
                F64Arith::new(),
            )?);
            println!("tape: {}", engine.tape());
            // The scalar decoder needs Σ arity evaluations per instance;
            // time it on a prefix so huge batches stay responsive.
            let prefix = &instances[..n.min(64)];
            let scalar = rate_of(
                || {
                    for e in prefix {
                        std::hint::black_box(circuit.mpe_assignment(e).expect("decodes"));
                    }
                },
                prefix.len(),
            );
            let batched = rate_of(
                || {
                    std::hint::black_box(engine.mpe_batch(&evidence_batch).expect("decodes"));
                },
                n,
            );
            ("MPE decodes", scalar, batched)
        }
        QueryType::Conditional => {
            let qv = match query_var {
                Some(name) => net
                    .find(name)
                    .ok_or_else(|| format!("no variable named {name}"))?,
                None => net.roots().first().copied().unwrap_or(VarId::from_index(0)),
            };
            let states = net.variable(qv).arity();
            println!(
                "query variable: {} ({} states)",
                net.variable(qv).name(),
                states
            );
            let engine = cap_threads(Engine::from_graph(
                circuit,
                Semiring::SumProduct,
                F64Arith::new(),
            )?);
            println!("tape: {}", engine.tape());
            let scalar = rate_of(
                || {
                    for e in &instances {
                        let den = circuit.evaluate(e).expect("evaluates");
                        for s in 0..states {
                            let mut with_q = e.clone();
                            with_q.observe(qv, s);
                            let num = circuit.evaluate(&with_q).expect("evaluates");
                            std::hint::black_box(num / den);
                        }
                    }
                },
                n,
            );
            let batched = rate_of(
                || {
                    std::hint::black_box(
                        engine
                            .conditional_batch(&evidence_batch, qv)
                            .expect("serves"),
                    );
                },
                n,
            );
            ("conditional queries", scalar, batched)
        }
    };
    println!("scalar tree-walk: {scalar:>12.0} {label}/s");
    println!(
        "batched engine:   {batched:>12.0} {label}/s  ({:.1}x)",
        batched / scalar
    );
    Ok(())
}

struct ServeSimArgs {
    /// Comma-separated built-in network names or `.bn` paths.
    models: String,
    requests: usize,
    max_batch: usize,
    max_wait_us: u64,
    workers: usize,
    seed: u64,
    /// Per-model cap on queued + in-flight lanes (0 = no quota).
    tenant_quota: usize,
    /// Percentage of the trace routed to the `Batch` priority lane.
    batch_share: u64,
    /// Anti-starvation promotion bound of the priority lanes, µs.
    aging_us: u64,
    /// Shrink the coalescing wait of hot streams (EWMA-driven).
    adaptive_wait: bool,
    /// Exact answer-cache capacity in entries (0 = cache off).
    cache_capacity: usize,
    /// Hot-swap the first model halfway through the trace
    /// ([`Server::reload`]): recompiles the same graph, so answers stay
    /// bit-identical while the version bumps and the cut-over runs.
    reload_mid_trace: bool,
    /// Bind the `/metrics` + `/healthz` sidecar here (port 0 = any).
    metrics_addr: Option<String>,
    /// Keep the sidecar and server alive this long after the trace.
    linger_ms: u64,
    /// Write the run's `problp-bench/v1` perf record here.
    bench_json: Option<PathBuf>,
}

/// A tiny deterministic xorshift64* stream — the trace mixer (the CLI
/// binary carries no RNG dependency).
struct TraceRng(u64);

impl TraceRng {
    fn new(seed: u64) -> Self {
        TraceRng(seed.wrapping_mul(2685821657736338717).max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(2685821657736338717)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Resolves a whole comma-separated `--models` list, rejecting duplicate
/// names up front (both `serve-sim`'s pool and the conformance report
/// are keyed by name, so a collision would silently merge two tenants).
fn load_models(spec: &str, seed: u64) -> Result<Vec<(String, BayesNet)>, String> {
    let mut models: Vec<(String, BayesNet)> = Vec::new();
    for entry in spec.split(',').filter(|s| !s.is_empty()) {
        let (name, net) = load_model(entry.trim(), seed)?;
        if models.iter().any(|(n, _)| n == &name) {
            return Err(format!(
                "duplicate model name {name:?} in --models (built-in names and .bn file \
                 stems must be unique)"
            ));
        }
        models.push((name, net));
    }
    Ok(models)
}

/// Resolves one `--models` entry: a built-in network name or a `.bn`
/// file path.
fn load_model(spec: &str, seed: u64) -> Result<(String, BayesNet), String> {
    use problp::bayes::networks;
    let net = match spec {
        "figure1" => Some(networks::figure1()),
        "sprinkler" => Some(networks::sprinkler()),
        "asia" => Some(networks::asia()),
        "student" => Some(networks::student()),
        "earthquake" => Some(networks::earthquake()),
        "cancer" => Some(networks::cancer()),
        "alarm" => Some(networks::alarm(seed)),
        _ => None,
    };
    if let Some(net) = net {
        return Ok((spec.to_string(), net));
    }
    let path = PathBuf::from(spec);
    let net = load_network(&path)?;
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| spec.to_string());
    Ok((name, net))
}

use problp::bench::percentile_us as percentile;

/// Renders an `Option<u128>` microseconds percentile for the latency
/// lines (`-` when the lane is empty).
fn fmt_us(p: Option<u128>) -> String {
    p.map_or_else(|| "-".to_string(), |us| us.to_string())
}

/// The scalar (per-request, tree-walk) answer a served response must
/// reproduce bit for bit, plus its prediction for conditionals.
enum ScalarReply {
    Marginal(f64),
    Mpe(f64),
    Conditional {
        posteriors: Vec<f64>,
        prediction: usize,
    },
    Impossible,
}

/// Replays a mixed-tenant trace through the sharded serving layer
/// (`problp::engine::serve`) under the configured QoS policy, checks
/// every admitted answer bit-identical to per-request evaluation, and
/// reports per-class latency percentiles, quota rejects and the
/// batched-vs-scalar speedup.
fn serve_sim(args: &ServeSimArgs) -> Result<(), Box<dyn std::error::Error>> {
    use problp::engine::{
        CircuitPool, Priority, ServeConfig, ServeError, ServeRequest, ServeResponse, Server,
    };
    use problp::telemetry::{http_get, metric_names, MetricsRegistry, Sidecar};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let mut tenants: Vec<(String, BayesNet, AcGraph)> = Vec::new();
    for (name, net) in load_models(&args.models, args.seed)? {
        let ac = compile(&net)?;
        tenants.push((name, net, ac));
    }
    if tenants.len() < 2 {
        return Err("serve-sim needs at least two models (--models a,b)".into());
    }

    // The seeded mixed-tenant trace: random model, random query kind,
    // random instance from the model's canonical evidence pool.
    let pools: Vec<Vec<Evidence>> = tenants
        .iter()
        .map(|(_, _, ac)| problp::bayes::single_variable_evidences(ac.var_arities()))
        .collect();
    let mut rng = TraceRng::new(args.seed);
    let trace: Vec<(usize, ServeRequest)> = (0..args.requests.max(1))
        .map(|_| {
            let t = rng.below(tenants.len());
            let (name, net, _) = &tenants[t];
            let query = match rng.below(3) {
                0 => BatchQuery::Marginal,
                1 => BatchQuery::Mpe,
                _ => BatchQuery::Conditional {
                    query_var: net.roots().first().copied().unwrap_or(VarId::from_index(0)),
                },
            };
            let evidence = pools[t][rng.below(pools[t].len())].clone();
            let priority = if (rng.below(100) as u64) < args.batch_share {
                Priority::Batch
            } else {
                Priority::Interactive
            };
            (
                t,
                ServeRequest {
                    model: name.clone(),
                    evidence,
                    query,
                    priority,
                },
            )
        })
        .collect();

    println!(
        "serve-sim: {} models, {} requests (seed {})",
        tenants.len(),
        trace.len(),
        args.seed
    );
    for (name, net, _) in &tenants {
        let share = trace.iter().filter(|(_, r)| &r.model == name).count();
        println!(
            "  model {name}: {} variables, {share} requests",
            net.var_count()
        );
    }
    println!(
        "  policy: max_batch {}, max_wait {}us, workers {}, engine threads 1",
        args.max_batch, args.max_wait_us, args.workers
    );
    println!(
        "  qos: tenant_quota {} ({}), batch share {}%, aging {}us, adaptive wait {}",
        args.tenant_quota,
        if args.tenant_quota == 0 { "off" } else { "on" },
        args.batch_share,
        args.aging_us,
        if args.adaptive_wait { "on" } else { "off" }
    );
    println!(
        "  cache: capacity {} ({}), mid-trace reload {}",
        args.cache_capacity,
        if args.cache_capacity == 0 {
            "off"
        } else {
            "on"
        },
        if args.reload_mid_trace { "on" } else { "off" }
    );

    // Scalar replay: every request answered alone by the per-instance
    // tree-walk (the paper's software baseline) — also the bit-identity
    // reference for the pooled answers. Per-request timings let the
    // speedup compare like with like when a quota rejects part of the
    // trace.
    let scalar_start = Instant::now();
    let scalar: Vec<(ScalarReply, Duration)> = trace
        .iter()
        .map(|(t, req)| {
            let req_start = Instant::now();
            let ac = &tenants[*t].2;
            let e = &req.evidence;
            let reply = match req.query {
                BatchQuery::Marginal => Ok(ScalarReply::Marginal(ac.evaluate(e)?)),
                BatchQuery::Mpe => {
                    let (_, value) = ac.mpe_assignment(e)?;
                    Ok(ScalarReply::Mpe(value))
                }
                BatchQuery::Conditional { query_var } => {
                    let den = ac.evaluate(e)?;
                    if den == 0.0 {
                        return Ok((ScalarReply::Impossible, req_start.elapsed()));
                    }
                    let states = ac.var_arities()[query_var.index()];
                    let mut posteriors = Vec::with_capacity(states);
                    let mut prediction = 0usize;
                    let mut best = f64::NEG_INFINITY;
                    for s in 0..states {
                        let mut with_q = e.clone();
                        with_q.observe(query_var, s);
                        let num = ac.evaluate(&with_q)?;
                        posteriors.push(num / den);
                        if num > best {
                            best = num;
                            prediction = s;
                        }
                    }
                    Ok(ScalarReply::Conditional {
                        posteriors,
                        prediction,
                    })
                }
            };
            reply.map(|r| (r, req_start.elapsed()))
        })
        .collect::<Result<_, problp::ac::AcError>>()?;
    let scalar_total = scalar_start.elapsed();

    // Pooled serving: admission queue + dispatcher shards over the
    // multi-model CircuitPool.
    let mut pool = CircuitPool::new(F64Arith::new());
    for (name, _, ac) in &tenants {
        pool.register(name, ac)?;
    }
    let registry = Arc::new(MetricsRegistry::new());
    let server = Server::start_instrumented(
        pool,
        ServeConfig {
            max_batch: args.max_batch.max(1),
            max_wait: Duration::from_micros(args.max_wait_us),
            workers: args.workers.max(1),
            tenant_quota: args.tenant_quota,
            priority_aging: Duration::from_micros(args.aging_us),
            adaptive_wait: args.adaptive_wait,
            cache_capacity: args.cache_capacity,
        },
        Arc::clone(&registry),
    );
    // The observability sidecar scrapes the same registry the server
    // writes to; port 0 picks a free port, printed for external
    // scrapers (and the CI smoke test).
    let sidecar = match &args.metrics_addr {
        Some(addr) => {
            let s = Sidecar::start(addr, Arc::clone(&registry), server.health_fn())
                .map_err(|e| format!("cannot bind metrics sidecar on {addr}: {e}"))?;
            println!("  metrics sidecar: http://{}/metrics", s.local_addr());
            Some(s)
        }
        None => None,
    };
    let served_start = Instant::now();
    // With --reload-mid-trace, the first model is hot-swapped while the
    // first half of the trace is still in flight: admissions after this
    // point run on tape version 2 (recompiled from the same graph, so
    // every bit-identity check below still holds), in-flight work stays
    // pinned to version 1, and nothing is drained for the cut-over.
    let reload_at = if args.reload_mid_trace {
        Some(trace.len() / 2)
    } else {
        None
    };
    let mut submitted = Vec::with_capacity(trace.len());
    for (i, (_, req)) in trace.iter().enumerate() {
        if Some(i) == reload_at {
            let (name, _, ac) = &tenants[0];
            let version = server.reload(name, ac)?;
            println!("  mid-trace reload: model {name} cut over to version {version}");
        }
        submitted.push((Instant::now(), server.submit(req.clone())));
    }
    // Self-check while the trace is in flight: the sidecar must report
    // healthy (workers alive, not shut down) mid-run.
    if let Some(s) = &sidecar {
        let (status, body) = http_get(&s.local_addr(), "/healthz")
            .map_err(|e| format!("mid-trace /healthz scrape failed: {e}"))?;
        if status != 200 {
            return Err(format!("mid-trace /healthz returned {status}: {}", body.trim()).into());
        }
        println!("  mid-trace /healthz: {status} ok");
    }
    let mut quota_rejects = 0usize;
    let sojourn =
        problp::telemetry::Histogram::new(problp::telemetry::default_latency_buckets_us());
    let mut latencies_us: Vec<(Priority, u128)> = Vec::with_capacity(submitted.len());
    // One slot per trace entry: `None` marks a quota-rejected request
    // (a policy outcome, excluded from the bit-identity denominator).
    let mut served: Vec<Option<problp::engine::LaneResult<f64>>> =
        Vec::with_capacity(submitted.len());
    // One shared drain budget: a wedged dispatcher fails the sim in
    // ~30s total, not 30s per ticket.
    let drain_deadline = Instant::now() + Duration::from_secs(30);
    for ((enqueued, ticket), (_, req)) in submitted.into_iter().zip(&trace) {
        // Latency is submit → dispatcher completion (the timestamp the
        // ticket carries), not submit → whenever this drain loop gets
        // around to the ticket. The deadline means a wedged dispatcher
        // fails the sim instead of hanging it.
        match ticket {
            Ok(t) => {
                let (reply, completed) =
                    t.wait_deadline_timed(drain_deadline.saturating_duration_since(Instant::now()));
                let waited = completed.saturating_duration_since(enqueued);
                sojourn.observe_duration(waited);
                latencies_us.push((req.priority, waited.as_micros()));
                served.push(Some(reply));
            }
            Err(ServeError::QuotaExceeded { .. }) => {
                quota_rejects += 1;
                served.push(None);
            }
            Err(e) => return Err(format!("admission failed: {e}").into()),
        }
    }
    let served_total = served_start.elapsed();

    // Bit-identity: the coalesced answer must reproduce the scalar reply
    // exactly — value bits, posterior bits, predictions — and the typed
    // impossible-evidence lanes must line up.
    let mut mismatches = 0usize;
    for (i, ((t, req), (outcome, (want, _)))) in
        trace.iter().zip(served.iter().zip(&scalar)).enumerate()
    {
        let Some(reply) = outcome else {
            continue; // quota-rejected at admission, counted above
        };
        let ac = &tenants[*t].2;
        let ok = match (reply, want) {
            (Ok(ServeResponse::Marginal { value, .. }), ScalarReply::Marginal(w)) => {
                value.to_bits() == w.to_bits()
            }
            (
                Ok(ServeResponse::Mpe {
                    value, assignment, ..
                }),
                ScalarReply::Mpe(w),
            ) => {
                // The decoded assignment must achieve the max-product
                // value exactly (ties may pick a different argmax than
                // the scalar decoder, but never a different value) and
                // respect the request's evidence.
                value.to_bits() == w.to_bits()
                    && assignment.len() == req.evidence.len()
                    && ac
                        .evaluate(&Evidence::from_assignment(assignment))
                        .is_ok_and(|joint| joint.to_bits() == w.to_bits())
                    && req
                        .evidence
                        .iter()
                        .all(|(var, s)| assignment[var.index()] == s)
            }
            (
                Ok(ServeResponse::Conditional {
                    posteriors,
                    prediction,
                    ..
                }),
                ScalarReply::Conditional {
                    posteriors: wp,
                    prediction: wpred,
                },
            ) => {
                prediction == wpred
                    && posteriors.len() == wp.len()
                    && posteriors
                        .iter()
                        .zip(wp)
                        .all(|(a, b)| a.to_bits() == b.to_bits())
            }
            (Err(problp::engine::ServeError::ImpossibleEvidence), ScalarReply::Impossible) => true,
            _ => false,
        };
        // The pooled answer must also match the same request served
        // alone through the pool (coalescing-independence; flags are
        // batch-scope, so the payload comparison is the right one).
        let alone = server.pool().serve_one(req);
        if !ok || !problp::engine::lane_answer_eq(&alone, reply) {
            mismatches += 1;
            if mismatches <= 3 {
                eprintln!("mismatch at request {i}: {req:?}");
            }
        }
    }
    // The server's own counters must agree with the CLI's bookkeeping:
    // the stats snapshot is the authoritative record (the sidecar and
    // tests read the same atomics), the local counts are the check.
    let stats = server.stats();
    if stats.requests != trace.len() as u64 {
        return Err(format!(
            "server counted {} requests, the trace submitted {}",
            stats.requests,
            trace.len()
        )
        .into());
    }
    if stats.rejected_quota != quota_rejects as u64 {
        return Err(format!(
            "server counted {} quota rejects, admission returned {quota_rejects}",
            stats.rejected_quota
        )
        .into());
    }
    // Cache accounting: with the cache on, every well-formed submission
    // either hit or missed (hits bypass the quota; quota rejects still
    // count a miss first), so the two counters partition the trace.
    let expected_lookups = if args.cache_capacity > 0 {
        trace.len() as u64
    } else {
        0
    };
    if stats.cache_hits + stats.cache_misses != expected_lookups {
        return Err(format!(
            "cache books off: {} hits + {} misses != {expected_lookups} lookups",
            stats.cache_hits, stats.cache_misses
        )
        .into());
    }

    let admitted = trace.len() - quota_rejects;
    println!(
        "\n  verification: {}/{} admitted answers bit-identical to per-request evaluation",
        admitted - mismatches,
        admitted
    );
    if args.tenant_quota > 0 {
        println!(
            "  quota rejects: {quota_rejects}/{} (tenant_quota {})",
            trace.len(),
            args.tenant_quota
        );
    }
    println!(
        "  server stats: {} admitted, {} dispatches, queue-depth high water {}, {} workers live",
        stats.admitted, stats.dispatches, stats.queue_depth_high_water, stats.live_workers
    );
    // Overall sojourn percentiles, then per priority class when the
    // trace actually mixes classes.
    let mut all: Vec<u128> = latencies_us.iter().map(|(_, us)| *us).collect();
    all.sort_unstable();
    println!(
        "  latency (sojourn): p50 {}us  p90 {}us  p99 {}us  max {}us",
        fmt_us(percentile(&all, 50.0)),
        fmt_us(percentile(&all, 90.0)),
        fmt_us(percentile(&all, 99.0)),
        all.last().copied().unwrap_or(0)
    );
    for class in [Priority::Interactive, Priority::Batch] {
        let mut lane: Vec<u128> = latencies_us
            .iter()
            .filter(|(p, _)| *p == class)
            .map(|(_, us)| *us)
            .collect();
        if lane.is_empty() || lane.len() == all.len() {
            continue; // single-class trace: the overall line covers it
        }
        lane.sort_unstable();
        println!(
            "  latency ({class}): p50 {}us  p90 {}us  p99 {}us  max {}us  ({} requests)",
            fmt_us(percentile(&lane, 50.0)),
            fmt_us(percentile(&lane, 90.0)),
            fmt_us(percentile(&lane, 99.0)),
            lane.last().copied().unwrap_or(0),
            lane.len()
        );
    }
    let n = trace.len() as f64;
    println!(
        "  scalar replay:   {:>9.2} ms total  ({:>10.0} req/s)",
        scalar_total.as_secs_f64() * 1e3,
        n / scalar_total.as_secs_f64()
    );
    println!(
        "  pooled serving:  {:>9.2} ms total  ({:>10.0} req/s over {admitted} admitted)",
        served_total.as_secs_f64() * 1e3,
        admitted as f64 / served_total.as_secs_f64()
    );
    // Like for like: the scalar side of the speedup only counts the
    // requests the pooled side actually served (quota rejects are
    // work the scalar baseline would also not have done).
    let scalar_admitted: Duration = served
        .iter()
        .zip(&scalar)
        .filter(|(outcome, _)| outcome.is_some())
        .map(|(_, (_, d))| *d)
        .sum();
    println!(
        "  speedup: {:.2}x{}",
        scalar_admitted.as_secs_f64() / served_total.as_secs_f64(),
        if quota_rejects > 0 {
            " (over the admitted requests)"
        } else {
            ""
        }
    );
    if mismatches > 0 {
        return Err(format!("{mismatches} served answers diverged from scalar replay").into());
    }
    if quota_rejects > 0 && args.tenant_quota == 0 {
        return Err("quota rejects without a configured quota".into());
    }

    // Cache study: resubmit a slice of already-served requests. Every
    // replay must come back bit-identical to the first pass, and with a
    // cache big enough that nothing was evicted, every one must be a
    // hit. After a mid-trace reload only post-reload requests replay —
    // the swap invalidated the old version's entries by design.
    let mut replay_submissions = 0usize;
    if args.cache_capacity > 0 {
        let before = server.stats();
        let replay: Vec<usize> = served
            .iter()
            .enumerate()
            .filter(|(i, outcome)| outcome.is_some() && reload_at.is_none_or(|at| *i >= at))
            .map(|(i, _)| i)
            .collect();
        let replay = &replay[replay.len().saturating_sub(32)..];
        replay_submissions = replay.len();
        let replay_deadline = Instant::now() + Duration::from_secs(30);
        let mut replayed = 0usize;
        for &i in replay {
            let req = &trace[i].1;
            let ticket = match server.submit(req.clone()) {
                Ok(t) => t,
                // A miss (small cache) can still bounce off the quota;
                // that is the quota doing its job, not a cache bug.
                Err(ServeError::QuotaExceeded { .. }) => continue,
                Err(e) => return Err(format!("replay admission failed: {e}").into()),
            };
            let reply =
                ticket.wait_deadline(replay_deadline.saturating_duration_since(Instant::now()));
            replayed += 1;
            let first = served[i].as_ref().expect("replay set is served");
            if !problp::engine::lane_answer_eq(first, &reply) {
                return Err(format!("cache replay diverged at request {i}").into());
            }
        }
        let after = server.stats();
        let hits = after.cache_hits - before.cache_hits;
        println!(
            "  cache replay: {replayed} resubmissions, {hits} hits \
             ({} hits / {} misses / {} evictions overall)",
            after.cache_hits, after.cache_misses, after.cache_evictions
        );
        if args.cache_capacity >= admitted && hits != replayed as u64 {
            return Err(format!(
                "expected all {replayed} replays to hit an unevicted cache, got {hits}"
            )
            .into());
        }
    }
    let stats = server.stats();
    let versions: Vec<String> = stats
        .model_versions
        .iter()
        .map(|(m, v)| format!("{m}=v{v}"))
        .collect();
    println!("  model versions: {}", versions.join("  "));
    if args.reload_mid_trace {
        let (name0, _, _) = &tenants[0];
        let v0 = stats
            .model_versions
            .iter()
            .find(|(m, _)| m == name0)
            .map(|(_, v)| *v);
        if v0 != Some(2) {
            return Err(format!(
                "model {name0} should be at version 2 after the reload, stats say {v0:?}"
            )
            .into());
        }
    }

    // Final self-scrape: the Prometheus rendering must carry the series
    // the run produced — the request counter at the trace size, the
    // queue-depth gauge and the typed reject counters.
    if let Some(s) = &sidecar {
        let (status, body) = http_get(&s.local_addr(), "/metrics")
            .map_err(|e| format!("/metrics scrape failed: {e}"))?;
        if status != 200 {
            return Err(format!("/metrics returned {status}").into());
        }
        let want_counter = format!(
            "{} {}",
            metric_names::SERVE_REQUESTS_TOTAL,
            trace.len() + replay_submissions
        );
        let want_hits = format!(
            "{} {}",
            metric_names::SERVE_CACHE_HITS_TOTAL,
            stats.cache_hits
        );
        for needle in [
            want_counter.as_str(),
            want_hits.as_str(),
            metric_names::SERVE_CACHE_MISSES_TOTAL,
            metric_names::POOL_MODEL_VERSION,
            metric_names::SERVE_QUEUE_DEPTH,
            metric_names::SERVE_REJECTED_TOTAL,
            metric_names::SERVE_SOJOURN_US,
        ] {
            if !body.contains(needle) {
                return Err(format!("/metrics scrape is missing {needle:?}").into());
            }
        }
        println!(
            "  /metrics self-check: {} bytes, all expected series present",
            body.len()
        );
    }

    // The machine-readable perf record (`reproduce check-bench` format).
    if let Some(path) = &args.bench_json {
        let record = problp::bench::BenchRecord {
            scenario: "serve_sim".to_string(),
            requests: trace.len() as u64,
            throughput_rps: admitted as f64 / served_total.as_secs_f64(),
            latency: Some(sojourn.snapshot()),
            rejects: quota_rejects as u64,
            extra: vec![
                (
                    "models".to_string(),
                    problp::telemetry::JsonValue::from(tenants.len()),
                ),
                (
                    "workers".to_string(),
                    problp::telemetry::JsonValue::from(args.workers.max(1)),
                ),
                (
                    "identical".to_string(),
                    problp::telemetry::JsonValue::from(admitted - mismatches),
                ),
                (
                    "scalar_secs".to_string(),
                    problp::telemetry::JsonValue::from(scalar_total.as_secs_f64()),
                ),
                (
                    "served_secs".to_string(),
                    problp::telemetry::JsonValue::from(served_total.as_secs_f64()),
                ),
            ],
        };
        let text = record.to_json().render_pretty();
        problp::bench::validate_bench_json(&text)
            .map_err(|e| format!("emitted bench record is invalid: {e}"))?;
        std::fs::write(path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("  wrote {}", path.display());
    }

    // Keep the sidecar (and the healthy server behind it) up for
    // external scrapers before tearing down.
    if args.linger_ms > 0 {
        std::thread::sleep(Duration::from_millis(args.linger_ms));
    }
    server.shutdown();
    drop(sidecar);
    Ok(())
}

struct ServeHttpArgs {
    /// Comma-separated built-in network names or `.bn` paths.
    models: String,
    /// Gateway bind address (`host:port`; port 0 = OS-assigned).
    addr: String,
    /// `TOK=MODEL` pairs; `None` mints `token-<model>` per model.
    tokens: Option<String>,
    /// Gateway connection-handling worker threads.
    http_workers: usize,
    max_batch: usize,
    max_wait_us: u64,
    workers: usize,
    seed: u64,
    tenant_quota: usize,
    cache_capacity: usize,
    /// `Some(n)`: replay an `n`-request seeded trace through real
    /// sockets, self-check and exit. `None`: serve until killed.
    self_drive: Option<usize>,
    metrics_addr: Option<String>,
    /// Self-drive / bounded-serve linger before exiting.
    linger_ms: u64,
    /// Write the run's `problp-bench/v1` perf record here.
    bench_json: Option<PathBuf>,
}

/// Renders a [`problp::engine::ServeRequest`] as the gateway's POST
/// body. The model never appears — it is carried by the bearer token.
fn gateway_body(req: &problp::engine::ServeRequest) -> String {
    let lanes: Vec<String> = (0..req.evidence.len())
        .map(|i| match req.evidence.state(VarId::from_index(i)) {
            Some(s) => s.to_string(),
            None => "null".to_string(),
        })
        .collect();
    let priority = match req.priority {
        problp::engine::Priority::Interactive => "interactive",
        problp::engine::Priority::Batch => "batch",
    };
    match req.query {
        BatchQuery::Marginal => format!(
            r#"{{"query": "marginal", "evidence": [{}], "priority": "{priority}"}}"#,
            lanes.join(", ")
        ),
        BatchQuery::Mpe => format!(
            r#"{{"query": "mpe", "evidence": [{}], "priority": "{priority}"}}"#,
            lanes.join(", ")
        ),
        BatchQuery::Conditional { query_var } => format!(
            r#"{{"query": "conditional", "query_var": {}, "evidence": [{}], "priority": "{priority}"}}"#,
            query_var.index(),
            lanes.join(", ")
        ),
    }
}

/// Whether a parsed 200 body reproduces the uncached `serve_one`
/// reference bit for bit (values, posteriors, assignments,
/// predictions — flags are batch-scope and excluded by design).
fn gateway_reply_matches(
    doc: &problp::telemetry::JsonValue,
    want: &problp::engine::ServeResponse<f64>,
) -> bool {
    use problp::engine::ServeResponse;
    use problp::telemetry::JsonValue;
    let f64_field = |name: &str| doc.get(name).and_then(JsonValue::as_f64);
    let usize_array = |name: &str| -> Option<Vec<usize>> {
        doc.get(name)?
            .as_array()?
            .iter()
            .map(|v| v.as_f64().map(|f| f as usize))
            .collect()
    };
    match want {
        ServeResponse::Marginal { value, .. } => {
            f64_field("value").is_some_and(|got| got.to_bits() == value.to_bits())
        }
        ServeResponse::Mpe {
            assignment, value, ..
        } => {
            f64_field("value").is_some_and(|got| got.to_bits() == value.to_bits())
                && usize_array("assignment").is_some_and(|got| &got == assignment)
        }
        ServeResponse::Conditional {
            posteriors,
            prediction,
            ..
        } => {
            let got: Option<Vec<f64>> = doc
                .get("posteriors")
                .and_then(JsonValue::as_array)
                .map(|a| a.iter().filter_map(JsonValue::as_f64).collect());
            got.is_some_and(|got| {
                got.len() == posteriors.len()
                    && got
                        .iter()
                        .zip(posteriors)
                        .all(|(a, b)| a.to_bits() == b.to_bits())
            }) && f64_field("prediction").is_some_and(|p| p as usize == *prediction)
        }
    }
}

/// Hosts the multi-model pool behind the HTTP query gateway
/// (`problp::gateway`). Without `--self-drive` it serves until killed
/// (or for `--linger-ms`); with it, a seeded mixed-query trace is
/// replayed through real sockets, every admitted answer checked
/// bit-identical to per-request `serve_one` evaluation, the typed
/// error → status mapping probed (401/404/405/400/413/429), and the
/// `problp_gateway_*` series cross-checked against the client's own
/// status counts.
fn serve_http(args: &ServeHttpArgs) -> Result<(), Box<dyn std::error::Error>> {
    use problp::engine::{
        CircuitPool, Gateway, GatewayConfig, Priority, ServeConfig, ServeError, ServeRequest,
        Server,
    };
    use problp::telemetry::{
        http_post, http_request, metric_names, JsonValue, MetricsRegistry, Sidecar,
    };
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let mut tenants: Vec<(String, BayesNet, AcGraph)> = Vec::new();
    for (name, net) in load_models(&args.models, args.seed)? {
        let ac = compile(&net)?;
        tenants.push((name, net, ac));
    }
    if tenants.is_empty() {
        return Err("serve-http needs at least one model (--models a,b)".into());
    }

    // The auth table: explicit TOK=MODEL pairs, or one minted
    // `token-<model>` per hosted model.
    let tokens: Vec<(String, String)> = match &args.tokens {
        Some(spec) => {
            let mut table = Vec::new();
            for entry in spec.split(',').filter(|s| !s.is_empty()) {
                let Some((tok, model)) = entry.trim().split_once('=') else {
                    return Err(format!("--tokens entry {entry:?} is not TOK=MODEL").into());
                };
                if !tenants.iter().any(|(n, _, _)| n == model) {
                    return Err(format!("--tokens names unhosted model {model:?}").into());
                }
                table.push((tok.to_string(), model.to_string()));
            }
            table
        }
        None => tenants
            .iter()
            .map(|(n, _, _)| (format!("token-{n}"), n.clone()))
            .collect(),
    };

    let mut pool = CircuitPool::new(F64Arith::new());
    for (name, _, ac) in &tenants {
        pool.register(name, ac)?;
    }
    let registry = Arc::new(MetricsRegistry::new());
    let server = Arc::new(Server::start_instrumented(
        pool,
        ServeConfig {
            max_batch: args.max_batch.max(1),
            max_wait: Duration::from_micros(args.max_wait_us),
            workers: args.workers.max(1),
            tenant_quota: args.tenant_quota,
            cache_capacity: args.cache_capacity,
            ..ServeConfig::default()
        },
        Arc::clone(&registry),
    ));
    let mut gateway = Gateway::start(
        Arc::clone(&server),
        GatewayConfig {
            addr: args.addr.clone(),
            tokens: tokens.clone(),
            http_workers: args.http_workers.max(1),
            ..GatewayConfig::default()
        },
    )
    .map_err(|e| format!("cannot bind gateway on {}: {e}", args.addr))?;
    let addr = gateway.local_addr();
    println!(
        "serve-http: {} models behind POST http://{addr}/v1/query",
        tenants.len()
    );
    for (tok, model) in &tokens {
        println!("  token {tok} -> model {model}");
    }
    let sidecar = match &args.metrics_addr {
        Some(maddr) => {
            let s = Sidecar::start(maddr, Arc::clone(&registry), server.health_fn())
                .map_err(|e| format!("cannot bind metrics sidecar on {maddr}: {e}"))?;
            println!("  metrics sidecar: http://{}/metrics", s.local_addr());
            Some(s)
        }
        None => None,
    };

    let Some(drive) = args.self_drive else {
        // Plain serving mode: stay up until killed, or for a bounded
        // window when --linger-ms is given (the CI smoke uses this).
        if args.linger_ms > 0 {
            std::thread::sleep(Duration::from_millis(args.linger_ms));
            gateway.shutdown();
            drop(server); // the Arc's last drop joins the serve workers
            drop(sidecar);
            return Ok(());
        }
        loop {
            std::thread::sleep(Duration::from_secs(1));
        }
    };

    // --- Self-drive: a seeded mixed trace over real sockets. ---
    let pools: Vec<Vec<Evidence>> = tenants
        .iter()
        .map(|(_, _, ac)| problp::bayes::single_variable_evidences(ac.var_arities()))
        .collect();
    let mut rng = TraceRng::new(args.seed);
    let trace: Vec<(usize, ServeRequest)> = (0..drive.max(1))
        .map(|_| {
            let t = rng.below(tenants.len());
            let (name, net, _) = &tenants[t];
            let query = match rng.below(3) {
                0 => BatchQuery::Marginal,
                1 => BatchQuery::Mpe,
                _ => BatchQuery::Conditional {
                    query_var: net.roots().first().copied().unwrap_or(VarId::from_index(0)),
                },
            };
            let evidence = pools[t][rng.below(pools[t].len())].clone();
            let priority = if rng.below(4) == 0 {
                Priority::Batch
            } else {
                Priority::Interactive
            };
            (
                t,
                ServeRequest {
                    model: name.clone(),
                    evidence,
                    query,
                    priority,
                },
            )
        })
        .collect();
    println!(
        "  self-drive: {} requests (seed {})",
        trace.len(),
        args.seed
    );

    let token_for = |model: &str| -> Result<&str, String> {
        tokens
            .iter()
            .find(|(_, m)| m == model)
            .map(|(t, _)| t.as_str())
            .ok_or_else(|| format!("no token grants model {model:?}"))
    };
    let bearer = |tok: &str| [("Authorization", format!("Bearer {tok}"))];
    // The client's own status ledger: the run's last self-check holds
    // the gateway's counters to exactly these numbers.
    let mut statuses: Vec<(u16, u64)> = Vec::new();
    let mut count = |code: u16| match statuses.iter_mut().find(|(c, _)| *c == code) {
        Some((_, n)) => *n += 1,
        None => statuses.push((code, 1)),
    };
    let latency =
        problp::telemetry::Histogram::new(problp::telemetry::default_latency_buckets_us());
    let mut latencies_us: Vec<u128> = Vec::with_capacity(trace.len());
    let mut identical = 0usize;
    let mut mismatches = 0usize;
    let mut impossible = 0usize;
    let drive_start = Instant::now();
    for (i, (_, req)) in trace.iter().enumerate() {
        let body = gateway_body(req);
        let tok = token_for(&req.model)?;
        let sent = Instant::now();
        let (code, _headers, text) = http_post(&addr, "/v1/query", &bearer(tok), &body)
            .map_err(|e| format!("request {i} failed: {e}"))?;
        let waited = sent.elapsed();
        latency.observe_duration(waited);
        latencies_us.push(waited.as_micros());
        count(code);
        // The uncached per-request reference the socket answer must
        // reproduce bit for bit.
        let reference = server.pool().serve_one(req);
        let ok = match (code, &reference) {
            (200, Ok(want)) => JsonValue::parse(&text)
                .ok()
                .is_some_and(|doc| gateway_reply_matches(&doc, want)),
            (422, Err(ServeError::ImpossibleEvidence)) => {
                impossible += 1;
                text.contains("\"impossible_evidence\"")
            }
            _ => false,
        };
        if ok {
            identical += 1;
        } else {
            mismatches += 1;
            if mismatches <= 3 {
                eprintln!("mismatch at request {i}: HTTP {code} {text} vs {reference:?}");
            }
        }
    }
    let drive_total = drive_start.elapsed();
    println!(
        "  verification: {identical}/{} socket answers bit-identical to serve_one \
         ({impossible} typed impossible-evidence)",
        trace.len()
    );

    // Typed-error probes: each must surface as its mapped status with
    // the stable error slug in a JSON body.
    let (ref_model, _, _) = &tenants[0];
    let ref_token = token_for(ref_model)?.to_string();
    let good = gateway_body(&ServeRequest {
        model: ref_model.clone(),
        evidence: Evidence::empty(tenants[0].2.var_arities().len()),
        query: BatchQuery::Marginal,
        priority: Priority::Interactive,
    });
    let bad_shape = r#"{"query": "marginal", "evidence": [null]}"#;
    let oversized = format!(
        r#"{{"query": "marginal", "evidence": [{}null]}}"#,
        "null, ".repeat(20_000)
    );
    let probes: Vec<(&str, u16, &str, problp::telemetry::HttpResponse)> = vec![
        (
            "missing auth",
            401,
            "unauthorized",
            http_post(&addr, "/v1/query", &[], &good)?,
        ),
        (
            "unknown token",
            401,
            "unauthorized",
            http_post(&addr, "/v1/query", &bearer("definitely-wrong"), &good)?,
        ),
        (
            "unknown path",
            404,
            "not_found",
            http_post(&addr, "/v2/query", &bearer(&ref_token), &good)?,
        ),
        (
            "bad method",
            405,
            "method_not_allowed",
            http_request(&addr, "GET", "/v1/query", &bearer(&ref_token), &[])?,
        ),
        (
            "bad json",
            400,
            "bad_json",
            http_post(&addr, "/v1/query", &bearer(&ref_token), "{nope")?,
        ),
        (
            "bad shape",
            400,
            "bad_shape",
            http_post(&addr, "/v1/query", &bearer(&ref_token), bad_shape)?,
        ),
        (
            "oversized body",
            413,
            "body_too_large",
            http_post(&addr, "/v1/query", &bearer(&ref_token), &oversized)?,
        ),
    ];
    let mut parse_rejects = 0u64;
    for (what, want_code, want_slug, (code, _headers, text)) in probes {
        count(code);
        if code == 413 {
            parse_rejects += 1; // rejected before the body counters
        }
        if code != want_code || !text.contains(&format!("\"{want_slug}\"")) {
            return Err(format!(
                "{what} probe: expected {want_code} {want_slug}, got {code}: {}",
                text.trim()
            )
            .into());
        }
        println!("  probe {what}: {code} {want_slug}");
    }

    // Deterministic quota probe on a dedicated single-worker instance:
    // a long coalescing window holds two requests in flight, so the
    // third must bounce off tenant_quota=2 as a 429 with Retry-After.
    {
        let mut qpool = CircuitPool::new(F64Arith::new());
        qpool.register(ref_model, &tenants[0].2)?;
        // The coalescing wait must outlast the 600ms fill window below
        // (so both fillers are still occupying the quota when the probe
        // lands) but stay well under the HTTP client's 2s read timeout,
        // or the fillers time out waiting for their own answers.
        let qserver = Arc::new(Server::start(
            qpool,
            ServeConfig {
                max_batch: 1024,
                max_wait: Duration::from_millis(1200),
                workers: 1,
                tenant_quota: 2,
                ..ServeConfig::default()
            },
        ));
        let mut qgateway = Gateway::start(
            Arc::clone(&qserver),
            GatewayConfig {
                tokens: vec![("quota-probe".to_string(), ref_model.clone())],
                ..GatewayConfig::default()
            },
        )?;
        let qaddr = qgateway.local_addr();
        let fill_body = good.clone();
        let fillers: Vec<_> = (0..2)
            .map(|_| {
                let body = fill_body.clone();
                std::thread::spawn(move || {
                    http_post(
                        &qaddr,
                        "/v1/query",
                        &[("Authorization", "Bearer quota-probe".to_string())],
                        &body,
                    )
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(600));
        let (code, headers, text) = http_post(
            &qaddr,
            "/v1/query",
            &[("Authorization", "Bearer quota-probe".to_string())],
            &good,
        )?;
        if code != 429 || !text.contains("\"quota_exceeded\"") {
            return Err(format!("quota probe: expected 429, got {code}: {}", text.trim()).into());
        }
        let retry_after = headers
            .iter()
            .find(|(n, _)| n == "retry-after")
            .map(|(_, v)| v.clone());
        if retry_after.is_none() {
            return Err("quota probe: 429 without a Retry-After header".into());
        }
        for filler in fillers {
            let (code, _h, text) = filler
                .join()
                .map_err(|_| "quota filler thread panicked")?
                .map_err(|e| format!("quota filler failed: {e}"))?;
            if code != 200 {
                return Err(format!("quota filler got {code}: {}", text.trim()).into());
            }
        }
        let scrape = qserver.metrics().render_prometheus();
        let needle = format!(
            "{}{{status=\"429\"}} 1",
            metric_names::GATEWAY_REQUESTS_TOTAL
        );
        if !scrape.contains(&needle) {
            return Err(format!("quota instance scrape is missing {needle:?}").into());
        }
        println!(
            "  probe quota: 429 quota_exceeded (Retry-After {})",
            retry_after.unwrap_or_default()
        );
        qgateway.shutdown();
        drop(qserver); // last Arc: Drop joins the quota instance
    }

    // Metrics self-check: the gateway's own counters must agree with
    // the client-side status ledger, and every request that got past
    // HTTP parsing must appear in the body/latency histograms.
    let scrape = registry.render_prometheus();
    for (code, n) in &statuses {
        let needle = format!(
            "{}{{status=\"{code}\"}} {n}",
            metric_names::GATEWAY_REQUESTS_TOTAL
        );
        if !scrape.contains(&needle) {
            return Err(format!("gateway scrape is missing {needle:?}").into());
        }
    }
    let total: u64 = statuses.iter().map(|(_, n)| *n).sum();
    let parsed = total - parse_rejects;
    for histogram in [
        metric_names::GATEWAY_BODY_BYTES,
        metric_names::GATEWAY_HANDLER_US,
    ] {
        let needle = format!("{histogram}_count {parsed}");
        if !scrape.contains(&needle) {
            return Err(format!("gateway scrape is missing {needle:?}").into());
        }
    }
    println!(
        "  metrics self-check: {total} requests across {} statuses",
        statuses.len()
    );

    let mut all = latencies_us.clone();
    all.sort_unstable();
    println!(
        "  latency (round-trip): p50 {}us  p90 {}us  p99 {}us  max {}us",
        fmt_us(percentile(&all, 50.0)),
        fmt_us(percentile(&all, 90.0)),
        fmt_us(percentile(&all, 99.0)),
        all.last().copied().unwrap_or(0)
    );
    println!(
        "  trace: {:>9.2} ms total  ({:>10.0} req/s over sockets)",
        drive_total.as_secs_f64() * 1e3,
        trace.len() as f64 / drive_total.as_secs_f64()
    );
    if mismatches > 0 {
        return Err(format!("{mismatches} socket answers diverged from serve_one").into());
    }

    if let Some(path) = &args.bench_json {
        let statuses_json = JsonValue::Object(
            statuses
                .iter()
                .map(|(c, n)| (c.to_string(), JsonValue::from(*n as usize)))
                .collect(),
        );
        let rejects: u64 = statuses
            .iter()
            .filter(|(c, _)| *c != 200)
            .map(|(_, n)| *n)
            .sum();
        let record = problp::bench::BenchRecord {
            scenario: "gateway".to_string(),
            requests: trace.len() as u64,
            throughput_rps: trace.len() as f64 / drive_total.as_secs_f64(),
            latency: Some(latency.snapshot()),
            rejects,
            extra: vec![
                ("models".to_string(), JsonValue::from(tenants.len())),
                (
                    "http_workers".to_string(),
                    JsonValue::from(args.http_workers.max(1)),
                ),
                ("identical".to_string(), JsonValue::from(identical)),
                ("statuses".to_string(), statuses_json),
            ],
        };
        let text = record.to_json().render_pretty();
        problp::bench::validate_bench_json(&text)
            .map_err(|e| format!("emitted bench record is invalid: {e}"))?;
        std::fs::write(path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("  wrote {}", path.display());
    }

    if args.linger_ms > 0 {
        std::thread::sleep(Duration::from_millis(args.linger_ms));
    }
    gateway.shutdown();
    drop(server); // the Arc's last drop joins the serve workers
    drop(sidecar);
    Ok(())
}

struct ConformanceArgs {
    /// Comma-separated built-in network names or `.bn` paths (`None`
    /// defaults to `sprinkler,asia`).
    models: Option<String>,
    /// Seeded random networks to append (`None` = 2 when no `--models`
    /// given, else 0).
    random: Option<usize>,
    batch: usize,
    seed: u64,
    /// Comma-separated arithmetics (`f64 | fixed:I.F | float:E.M`);
    /// `None` = all three defaults.
    repr: Option<String>,
    /// Corrupt this backend's stream (harness self-test).
    inject_fault: Option<String>,
}

/// Runs the differential conformance cross-check of
/// `problp::conformance` and fails (non-zero exit) on any backend
/// diverging from the scalar reference.
fn conformance(args: &ConformanceArgs) -> Result<(), Box<dyn std::error::Error>> {
    use problp::conformance::{
        random_models, run_conformance, ArithSpec, BackendKind, ConformanceConfig,
    };

    let mut models: Vec<(String, BayesNet)> = match &args.models {
        Some(spec) => load_models(spec, args.seed)?,
        None => Vec::new(),
    };
    let random = args.random.unwrap_or(if models.is_empty() { 2 } else { 0 });
    if models.is_empty() && random == 0 {
        return Err("conformance needs at least one model (--models or --random)".into());
    }
    if models.is_empty() {
        models.push((
            "sprinkler".to_string(),
            problp::bayes::networks::sprinkler(),
        ));
        models.push(("asia".to_string(), problp::bayes::networks::asia()));
    }
    models.extend(random_models(args.seed, random));

    let mut config = ConformanceConfig {
        batch: args.batch.max(1),
        seed: args.seed,
        ..ConformanceConfig::default()
    };
    if let Some(spec) = &args.repr {
        let mut ariths = Vec::new();
        for entry in spec.split(',').filter(|s| !s.is_empty()) {
            let Some(a) = ArithSpec::parse(entry.trim()) else {
                return Err(format!(
                    "bad --repr entry {entry:?} (expected f64, fixed:I.F or float:E.M)"
                )
                .into());
            };
            ariths.push(a);
        }
        if ariths.is_empty() {
            return Err("--repr lists no arithmetics".into());
        }
        config.ariths = ariths;
    }
    if let Some(backend) = &args.inject_fault {
        let Some(b) = BackendKind::parse(backend) else {
            let names: Vec<&str> = BackendKind::ALL.iter().map(|b| b.name()).collect();
            return Err(format!(
                "bad --inject-fault backend {backend:?} (expected one of {})",
                names.join(", ")
            )
            .into());
        };
        config.inject_fault = Some(b);
        eprintln!("injecting a fault into the {b} stream (harness self-test)");
    }

    let report = run_conformance(&models, &config)?;
    print!("{report}");
    if report.all_match() {
        Ok(())
    } else {
        Err(format!(
            "{} result lanes diverged from the scalar reference",
            report.total_mismatches()
        )
        .into())
    }
}

struct VerifyArgs {
    /// Comma-separated built-in network names or `.bn` paths (`None`
    /// defaults to `sprinkler,asia`).
    models: Option<String>,
    /// Comma-separated arithmetics for the range analysis (`None` =
    /// `f64,fixed:2.14,float:8.23`).
    repr: Option<String>,
    seed: u64,
    /// Mutate each tape before verification (red-path self-test); the
    /// run then *must* fail.
    corrupt: Option<String>,
}

/// Applies one named corruption class to a compiled tape through the
/// test-only mutation hook, so the CLI can demonstrate (and CI can
/// grep for) the verifier's typed rejections.
fn apply_corruption(tape: &mut problp::engine::Tape, class: &str) -> Result<(), String> {
    use problp::engine::Instr;
    let num_regs = tape.num_regs() as u32;
    let param = tape.param_regs().first().copied();
    let instrs = tape.raw_instrs_mut();
    match class {
        // An operand register past the register file: RegisterOutOfBounds.
        "oob-reg" => {
            let bin = instrs
                .iter_mut()
                .find_map(|i| match i {
                    Instr::Add { rhs, .. }
                    | Instr::Mul { rhs, .. }
                    | Instr::Max { rhs, .. }
                    | Instr::MinNz { rhs, .. } => Some(rhs),
                    Instr::LoadIndicator { .. } => None,
                })
                .ok_or("tape has no binary instruction to corrupt")?;
            *bin = num_regs + 7;
        }
        // An indicator slot past the evidence table: SlotOutOfBounds.
        "slot-oob" => {
            let slot = instrs
                .iter_mut()
                .find_map(|i| match i {
                    Instr::LoadIndicator { slot, .. } => Some(slot),
                    _ => None,
                })
                .ok_or("tape has no indicator load to corrupt")?;
            *slot = u32::MAX / 2;
        }
        // A write into the immutable parameter table: ParamRegisterWrite.
        "param-write" => {
            let reg = param.ok_or("tape has no parameter registers")?;
            let dst = instrs
                .first_mut()
                .map(|i| match i {
                    Instr::LoadIndicator { dst, .. }
                    | Instr::Add { dst, .. }
                    | Instr::Mul { dst, .. }
                    | Instr::Max { dst, .. }
                    | Instr::MinNz { dst, .. } => dst,
                })
                .ok_or("tape is empty")?;
            *dst = reg;
        }
        // No instruction ever defines the root: RootUndefined.
        "truncate" => instrs.clear(),
        other => {
            return Err(format!(
                "unknown --corrupt class {other:?} (expected oob-reg, slot-oob, \
                 param-write or truncate)"
            ));
        }
    }
    Ok(())
}

/// Runs the static-analysis subsystem (`problp::verify`) over each
/// model's tape: Layer-1 structural verification of the compact and
/// fused streams, Layer-2 range analysis per arithmetic, and the
/// minimal-safe-fixed-format search. Returns `Ok(false)` (and prints
/// `verdict: FAIL`) if any tape is rejected.
fn verify_tapes(args: &VerifyArgs) -> Result<bool, Box<dyn std::error::Error>> {
    use problp::engine::Tape;
    use problp::telemetry::{metric_names, MetricsRegistry};
    use problp::verify::{analyze, minimal_fixed_format, ArithSpec, VerifyMetrics};

    let models = load_models(
        args.models.as_deref().unwrap_or("sprinkler,asia"),
        args.seed,
    )?;
    if models.is_empty() {
        return Err("verify needs at least one model (--models)".into());
    }
    let spec = args.repr.as_deref().unwrap_or("f64,fixed:2.14,float:8.23");
    let mut ariths: Vec<ArithSpec> = Vec::new();
    for entry in spec.split(',').filter(|s| !s.is_empty()) {
        let Some(a) = ArithSpec::parse(entry.trim()) else {
            return Err(format!(
                "bad --repr entry {entry:?} (expected f64, fixed:I.F or float:E.M)"
            )
            .into());
        };
        ariths.push(a);
    }
    if ariths.is_empty() {
        return Err("--repr lists no arithmetics".into());
    }

    let registry = MetricsRegistry::new();
    let metrics = VerifyMetrics::new(&registry);
    if let Some(class) = &args.corrupt {
        eprintln!("corrupting every tape with class {class} (verifier self-test)");
    }

    let arith_width = 16usize;
    let mut header = format!("{:<12} {:>7}  ", "model", "instrs");
    for a in &ariths {
        header.push_str(&format!("{:<arith_width$}", a.to_string()));
    }
    header.push_str("minimal fixed");
    println!("{header}");
    println!("{}", "-".repeat(header.len().max(60)));

    let mut clean = true;
    for (name, net) in &models {
        let ac = compile(net)?;
        let mut tape = Tape::compile(&ac, Semiring::SumProduct)?;
        if let Some(class) = &args.corrupt {
            apply_corruption(&mut tape, class)?;
        }

        // Layer 1 first; a corrupted tape must not reach fusion or the
        // range analysis (both assume structural well-formedness).
        if let Err(e) = tape.verify() {
            metrics.observe_reject();
            println!("{name:<12} {:>7}  REJECTED ({e})", tape.instrs().len());
            clean = false;
            continue;
        }
        tape.verify_fused(&tape.fuse())?;
        metrics.observe_pass();

        let mut row = format!("{name:<12} {:>7}  ", tape.instrs().len());
        for &arith in &ariths {
            let report = analyze(&tape, arith)?;
            metrics.observe_report(&report);
            let cell = if report.all_safe() {
                "safe".to_string()
            } else {
                format!("sat:{} unf:{}", report.may_saturate, report.may_underflow)
            };
            row.push_str(&format!("{cell:<arith_width$}"));
        }
        let rec = minimal_fixed_format(&tape)?;
        row.push_str(&format!(
            "fixed:{}.{}{}",
            rec.format.int_bits(),
            rec.format.frac_bits(),
            // The width search is capped; `*` marks a recommendation
            // that still may saturate or underflow at the cap.
            if rec.saturation_free && rec.underflow_free {
                ""
            } else {
                "*"
            }
        ));
        println!("{row}");
    }

    let counter = |name: &str| registry.counter(name, "").get();
    println!(
        "\ncounters: runs={} rejects={} safe={} may-saturate={} may-underflow={}",
        counter(metric_names::VERIFY_RUNS_TOTAL),
        counter(metric_names::VERIFY_REJECTS_TOTAL),
        counter(metric_names::VERIFY_INSTRS_SAFE_TOTAL),
        counter(metric_names::VERIFY_INSTRS_MAY_SATURATE_TOTAL),
        counter(metric_names::VERIFY_INSTRS_MAY_UNDERFLOW_TOTAL),
    );
    if clean {
        println!("verdict: PASS — every tape verified");
    } else {
        println!("verdict: FAIL — the verifier rejected at least one tape");
    }
    Ok(clean)
}

/// The files `lint-src` scans: the whole serving module tree plus the
/// whole telemetry crate — the code that runs inside long-lived
/// servers, where a stray panic takes the process down.
const LINT_SCOPE_DIRS: [&str; 2] = ["crates/engine/src/serve", "crates/telemetry/src"];

/// Enforces the serving-path panic policy: no `.unwrap()` / `.expect(`
/// outside test code in the lint scope. Allowlist entries are
/// `file-suffix: line-substring` lines in `allow_path`; `#` comments
/// and blank lines are skipped. Returns `Ok(false)` on violations.
fn lint_src(allow_path: &std::path::Path) -> Result<bool, Box<dyn std::error::Error>> {
    let mut files = Vec::new();
    for scope in LINT_SCOPE_DIRS {
        let dir = std::fs::read_dir(scope)
            .map_err(|e| format!("cannot read {scope} (run from the repository root): {e}"))?;
        for entry in dir {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();

    let allow: Vec<(String, String)> = match std::fs::read_to_string(allow_path) {
        Ok(text) => text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .filter_map(|l| {
                l.split_once(':')
                    .map(|(f, p)| (f.trim().to_string(), p.trim().to_string()))
            })
            .collect(),
        // A missing allowlist just means "no exceptions".
        Err(_) => Vec::new(),
    };

    let mut violations = 0usize;
    for path in &files {
        let text = std::fs::read_to_string(path)?;
        let rel = path.to_string_lossy().replace('\\', "/");
        for (idx, line) in text.lines().enumerate() {
            // Everything from the first `#[cfg(test)]` on is test code
            // (the scoped files keep their test module last).
            if line.contains("#[cfg(test)]") {
                break;
            }
            let code = line.trim_start();
            // Doc text may legitimately *mention* unwrap().
            if code.starts_with("//") {
                continue;
            }
            if !code.contains(".unwrap()") && !code.contains(".expect(") {
                continue;
            }
            if allow
                .iter()
                .any(|(f, pat)| rel.ends_with(f.as_str()) && line.contains(pat.as_str()))
            {
                continue;
            }
            println!(
                "{rel}:{}: unwrap()/expect() in non-test code: {code}",
                idx + 1
            );
            violations += 1;
        }
    }

    if violations == 0 {
        println!(
            "lint-src: clean — no unwrap()/expect() in the non-test code of {} files",
            files.len()
        );
        Ok(true)
    } else {
        println!(
            "lint-src: {violations} violation(s); fix them or add a \
             `file-suffix: line-substring` entry to {}",
            allow_path.display()
        );
        Ok(false)
    }
}

fn execute(
    net: &BayesNet,
    circuit: &AcGraph,
    args: &RunArgs,
) -> Result<(), Box<dyn std::error::Error>> {
    let report = Problp::new(circuit)
        .query(args.query)
        .tolerance(args.tolerance)
        .run()?;
    println!("{report}");

    std::fs::create_dir_all(&args.out_dir)?;
    let report_path = args.out_dir.join("report.txt");
    std::fs::write(
        &report_path,
        format!(
            "network: {}\noptimized: {}\n{report}\n",
            args.network.display(),
            args.optimize
        ),
    )?;
    let rtl_path = args.out_dir.join("problp_ac_top.v");
    std::fs::write(&rtl_path, &report.hardware.verilog)?;

    // A self-checking testbench over a few canonical vectors.
    let bin = binarize(circuit)?;
    let netlist = Netlist::from_ac(&bin, report.selected.repr)?;
    let mut vectors = vec![Evidence::empty(net.var_count())];
    for v in 0..net.var_count().min(4) {
        let mut e = Evidence::empty(net.var_count());
        e.observe(VarId::from_index(v), 0);
        vectors.push(e);
    }
    let tb_path = args.out_dir.join("problp_ac_tb.v");
    std::fs::write(&tb_path, problp::hw::emit_testbench(&netlist, &vectors)?)?;

    println!(
        "\nwrote {}, {}, {}",
        report_path.display(),
        rtl_path.display(),
        tb_path.display()
    );
    Ok(())
}
