#!/usr/bin/env bash
# ThreadSanitizer pass over the concurrency-sensitive paths: the lock-free
# telemetry registry (atomic counter merges) and the serve-layer request
# coalescing (dispatcher shards + waiter handoff).
#
# TSan needs a nightly toolchain (-Zsanitizer=thread) and, for a fully
# instrumented std, -Zbuild-std + the rust-src component. The job is
# advisory: when no nightly toolchain is available (offline runners,
# stable-only images) it exits 0 with a notice instead of failing CI.
set -u -o pipefail

cd "$(dirname "$0")/.."

if ! command -v rustup >/dev/null 2>&1; then
    echo "tsan: rustup not installed; skipping (advisory job)"
    exit 0
fi
if ! rustup toolchain list 2>/dev/null | grep -q nightly; then
    if ! rustup toolchain install nightly --profile minimal >/dev/null 2>&1; then
        echo "tsan: nightly toolchain unavailable; skipping (advisory job)"
        exit 0
    fi
fi
rustup component add rust-src --toolchain nightly >/dev/null 2>&1 || true

TARGET=x86_64-unknown-linux-gnu

# The two tests TSan gates: the registry's cross-thread counter sum and
# the end-to-end coalescing trace (batched answers handed back to
# per-request waiters across shards).
run_tests() {
    cargo +nightly test "$@" --target "$TARGET" \
        -p problp-telemetry concurrent_counter_increments_sum_exactly &&
    cargo +nightly test "$@" --target "$TARGET" \
        -p problp-engine --lib mixed_tenant_trace_is_bit_identical_to_serve_one
}

# TSan is only sound with a *sanitized* std (-Zbuild-std, needs the
# rust-src component): an uninstrumented std hides the happens-before
# edges its mutexes and channels establish, so everything they guard
# reports as a false race. No rust-src → no meaningful run → skip.
if ! rustup component list --toolchain nightly 2>/dev/null |
    grep -q "rust-src (installed)"; then
    if ! rustup component add rust-src --toolchain nightly >/dev/null 2>&1; then
        echo "tsan: rust-src unavailable (offline toolchain?); skipping (advisory job)"
        exit 0
    fi
fi

export RUSTFLAGS="-Zsanitizer=thread"
if run_tests -Zbuild-std; then
    echo "tsan: clean (sanitized std)"
else
    echo "tsan: FAILED"
    exit 1
fi
